"""Deferred-verification engine: dirty windows, amortised checks, guarantees.

The engine's contract (ISSUE 1): dirty-window stores re-encode exactly
the lanes they touch; reads between scheduled checks are decode-free
cached views; and a bit flip injected during a deferral window is still
detected (or corrected) at the next scheduled check — never silently
consumed past the end-of-step sweep.
"""

import numpy as np
import pytest

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.errors import DetectedUncorrectableError
from repro.protect import (
    CheckPolicy,
    DeferredVerificationEngine,
    ProtectedCSRMatrix,
    ProtectedVector,
    protected_axpy,
    protected_dot,
    protected_spmv,
)
from repro.solvers.cg import protected_cg_run
from repro.solvers.ppcg import ppcg_solve, protected_ppcg_run

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


def make_matrix(n=8, seed=2):
    rng = np.random.default_rng(seed)
    return five_point_operator(
        n, n, rng.uniform(0.5, 2.0, (n, n)), rng.uniform(0.5, 2.0, (n, n)), 0.3
    )


class TestPolicyScheduler:
    def test_vector_interval_defaults_to_matrix_interval(self):
        assert CheckPolicy(interval=8).vector_interval == 8
        assert CheckPolicy(interval=1).vector_interval == 1
        # Matrix checks off is a baseline mode; vectors keep their checks.
        assert CheckPolicy(interval=0).vector_interval == 1

    def test_defer_writes_follows_vector_interval(self):
        assert not CheckPolicy(interval=1).defer_writes
        assert CheckPolicy(interval=8).defer_writes
        assert not CheckPolicy(interval=8, defer_writes=False).defer_writes
        assert CheckPolicy(interval=1, defer_writes=True).defer_writes

    def test_vector_check_cadence(self):
        policy = CheckPolicy(interval=1, vector_interval=3)
        pattern = [policy.vector_check_due() for _ in range(7)]
        assert pattern == [True, False, False, True, False, False, True]

    def test_independent_counters(self):
        policy = CheckPolicy(interval=2, vector_interval=3)
        assert policy.should_check() and policy.vector_check_due()
        assert not policy.should_check()
        assert not policy.vector_check_due()
        policy.reset()
        assert policy.should_check() and policy.vector_check_due()

    def test_end_of_step_with_any_deferral(self):
        assert not CheckPolicy(interval=1).end_of_step()
        assert CheckPolicy(interval=8).end_of_step()
        assert CheckPolicy(interval=1, vector_interval=4).end_of_step()
        assert CheckPolicy(interval=1, defer_writes=True).end_of_step()

    def test_stats_reset_covers_new_counters(self):
        policy = CheckPolicy()
        policy.stats.cached_reads = 5
        policy.stats.dirty_flushes = 2
        policy.stats.reset()
        assert policy.stats.cached_reads == 0
        assert policy.stats.dirty_flushes == 0


class TestDirtyWindowStore:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("n", [64, 67])
    def test_windowed_store_matches_reference(self, scheme, n):
        """Re-encoding only the window's lanes yields the same bits as a
        fresh whole-vector encode of the same contents."""
        rng = np.random.default_rng(0)
        base = rng.standard_normal(n)
        new = rng.standard_normal(n)
        vec = ProtectedVector(base, scheme)
        vec.store(new, window=(3, 9))
        ref_vals = base.copy()
        ref_vals[3:9] = new[3:9]
        ref = ProtectedVector(ref_vals, scheme)
        assert np.array_equal(f64_to_u64(vec.raw), f64_to_u64(ref.raw))
        assert vec.check().clean

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_deferred_store_flush_is_bitwise_equal_to_eager(self, scheme):
        rng = np.random.default_rng(1)
        base, new = rng.standard_normal(67), rng.standard_normal(67)
        eager = ProtectedVector(base, scheme)
        eager.store(new)
        deferred = ProtectedVector(base, scheme)
        deferred.store(new, defer=True)
        assert deferred.dirty_window == (0, 67)
        # The buffered values are readable decode-free before the flush.
        assert np.array_equal(deferred.view(), new)
        assert np.array_equal(deferred.values(), new)
        deferred.flush()
        assert deferred.dirty_window is None
        assert np.array_equal(f64_to_u64(deferred.raw), f64_to_u64(eager.raw))

    @pytest.mark.parametrize("scheme", ["secded128", "crc32c"])
    def test_deferred_windows_accumulate(self, scheme):
        rng = np.random.default_rng(2)
        base = rng.standard_normal(32)
        vec = ProtectedVector(base, scheme)
        vec.store(np.ones(3), window=(2, 5), defer=True)
        vec.store(np.full(4, 2.0), window=(9, 13), defer=True)
        assert vec.dirty_window == (2, 13)
        vec.flush()
        expected = base.copy()
        expected[2:5] = 1.0
        expected[9:13] = 2.0
        assert np.allclose(vec.values(), expected, atol=1e-12)
        assert vec.check().clean

    @pytest.mark.parametrize("scheme", ["secded64", "crc32c"])
    def test_tail_window_store(self, scheme):
        rng = np.random.default_rng(3)
        base = rng.standard_normal(67)  # tail of 67 % group elements
        vec = ProtectedVector(base, scheme)
        vec.store(np.full(3, 7.0), window=(64, 67))
        assert vec.check().clean
        assert np.allclose(vec.values()[64:], 7.0, atol=1e-12)

    def test_check_flushes_pending_window(self):
        vec = ProtectedVector(np.zeros(16), "secded64")
        vec.store(np.ones(16), defer=True)
        assert vec.check().clean          # flushed, encoded, verified
        assert vec.dirty_window is None
        assert np.allclose(vec.values(), 1.0, atol=1e-12)

    @pytest.mark.parametrize(
        ("scheme", "flip_idx", "window"),
        [("secded128", 1, (0, 1)), ("crc32c", 3, (0, 2))],
    )
    def test_partial_window_store_cannot_launder_lane_mate_flip(
        self, scheme, flip_idx, window
    ):
        """A flip in an unwritten lane-mate must not be re-blessed into a
        valid codeword by a partial-window re-encode (eager or deferred)."""
        vec = ProtectedVector(np.zeros(8), scheme)
        f64_to_u64(vec.raw)[flip_idx] ^= np.uint64(1) << np.uint64(40)
        with pytest.raises(DetectedUncorrectableError):
            vec.store(np.ones(window[1] - window[0]), window=window)
        vec2 = ProtectedVector(np.zeros(8), scheme)
        f64_to_u64(vec2.raw)[flip_idx] ^= np.uint64(1) << np.uint64(40)
        with pytest.raises(DetectedUncorrectableError):
            vec2.store(np.ones(window[1] - window[0]), window=window, defer=True)

    def test_cache_population_verifies_lineage(self):
        """view() must not silently seed the trusted cache from corrupted
        storage — detection happens at population time."""
        vec = ProtectedVector(np.zeros(16), "secded64")
        f64_to_u64(vec.raw)[3] ^= np.uint64(1) << np.uint64(40)
        with pytest.raises(DetectedUncorrectableError):
            vec.view()

    def test_flip_inside_dirty_window_is_dead_storage(self):
        """A flip landing in a lane the buffered write will overwrite is
        harmless: flush commits the authoritative cached values."""
        vec = ProtectedVector(np.zeros(16), "secded64")
        vec.store(np.ones(16), defer=True)
        f64_to_u64(vec.raw)[4] ^= np.uint64(1) << np.uint64(40)
        vec.flush()
        assert vec.check().clean
        assert np.allclose(vec.values(), 1.0, atol=1e-12)


class TestMidWindowDetection:
    def test_vector_flip_detected_at_next_scheduled_check(self):
        """Reads keep serving the cached view mid-window, but the next
        scheduled check must surface the corruption."""
        policy = CheckPolicy(interval=1, correct=False, vector_interval=4)
        engine = DeferredVerificationEngine(policy)
        vec = engine.register(ProtectedVector(np.ones(32), "secded64"), "r")
        assert engine.begin_iteration()  # iteration 0: check round runs clean
        engine.read(vec)
        f64_to_u64(vec.raw)[7] ^= np.uint64(1) << np.uint64(30)  # mid-window flip
        fired = []
        with pytest.raises(DetectedUncorrectableError):
            for _ in range(4):  # iterations 1..3 defer, iteration 4 checks
                fired.append(engine.begin_iteration())
                engine.read(vec)
        assert fired == [False, False, False]

    def test_vector_flip_corrected_at_next_scheduled_check(self):
        policy = CheckPolicy(interval=1, correct=True, vector_interval=4)
        engine = DeferredVerificationEngine(policy)
        original = np.ones(32)
        vec = engine.register(ProtectedVector(original, "secded64"), "r")
        engine.begin_iteration()
        clean_view = engine.read(vec).copy()
        f64_to_u64(vec.raw)[7] ^= np.uint64(1) << np.uint64(30)
        for _ in range(3):
            engine.begin_iteration()
            engine.read(vec)
        assert engine.begin_iteration()  # scheduled check corrects in place
        assert policy.stats.corrected == 1
        assert np.array_equal(engine.read(vec), clean_view)

    def test_matrix_flip_detected_at_next_scheduled_check(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")  # detect-only schemes
        policy = CheckPolicy(interval=4, correct=False)
        engine = DeferredVerificationEngine(policy)
        x = np.ones(matrix.n_cols)
        engine.spmv(pmat, x)  # access 0: full check, clean
        f64_to_u64(pmat.values)[3] ^= np.uint64(1) << np.uint64(12)
        engine.spmv(pmat, x)  # accesses 1..3: range checks only
        engine.spmv(pmat, x)
        engine.spmv(pmat, x)
        with pytest.raises(DetectedUncorrectableError):
            engine.spmv(pmat, x)  # access 4: scheduled full check fires
        assert policy.stats.bounds_checks == 3

    def test_finalize_sweep_catches_flip_after_last_check(self):
        policy = CheckPolicy(interval=1, correct=False, vector_interval=100)
        engine = DeferredVerificationEngine(policy)
        vec = engine.register(ProtectedVector(np.ones(32), "secded64"), "x")
        engine.begin_iteration()
        engine.read(vec)
        f64_to_u64(vec.raw)[5] ^= np.uint64(1) << np.uint64(25)
        with pytest.raises(DetectedUncorrectableError):
            engine.finalize()

    def test_unread_vectors_skip_scheduled_checks(self):
        policy = CheckPolicy(interval=1, vector_interval=1)
        engine = DeferredVerificationEngine(policy)
        engine.register(ProtectedVector(np.ones(8), "secded64"), "idle")
        read_vec = engine.register(ProtectedVector(np.ones(8), "secded64"), "hot")
        engine.begin_iteration()
        assert policy.stats.vector_checks == 0  # nothing read yet
        engine.read(read_vec)
        engine.begin_iteration()
        assert policy.stats.vector_checks == 1  # only the consumed region


class TestFusedKernels:
    def test_fused_dot_axpy_match_plain(self):
        rng = np.random.default_rng(5)
        a_vals, b_vals = rng.standard_normal(48), rng.standard_normal(48)
        engine = DeferredVerificationEngine(CheckPolicy(interval=8))
        a = ProtectedVector(a_vals, "secded64")
        b = ProtectedVector(b_vals, "secded64")
        got = protected_dot(a, b, engine=engine)
        assert got == pytest.approx(float(np.dot(a.values(), b.values())), rel=1e-15)
        protected_axpy(2.0, a, b, engine=engine)
        assert np.allclose(b.values(), 2.0 * a.values() + b_vals, atol=1e-9)
        assert b.dirty_window is not None  # write was buffered, not re-encoded
        assert engine.stats.deferred_stores == 1
        assert engine.stats.cached_reads >= 4

    def test_fused_spmv_raises_due_from_engine_schedule(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        engine = DeferredVerificationEngine(CheckPolicy(interval=1, correct=False))
        pmat.colidx[0] ^= np.uint32(1) << np.uint32(2)
        with pytest.raises(DetectedUncorrectableError):
            protected_spmv(pmat, np.ones(matrix.n_cols), engine=engine)

    def test_fused_kernels_keep_eager_path_without_engine(self):
        vec = ProtectedVector(np.ones(16), "sed")
        f64_to_u64(vec.raw)[3] ^= np.uint64(1) << np.uint64(20)
        with pytest.raises(DetectedUncorrectableError):
            protected_dot(vec, vec)


class TestDeferredSolvers:
    def make_system(self, n=10, seed=7):
        matrix = make_matrix(n, seed)
        rng = np.random.default_rng(seed + 1)
        x_true = rng.standard_normal(matrix.n_cols)
        return matrix, matrix.matvec(x_true), x_true

    @pytest.mark.parametrize("interval", [2, 8, 32])
    def test_deferred_cg_matches_plain_solution(self, interval):
        matrix, b, x_true = self.make_system()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        res = protected_cg_run(
            pmat, b, eps=1e-24,
            policy=CheckPolicy(interval=interval, correct=False),
            vector_scheme="secded64",
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)
        assert res.info["dirty_flushes"] > 0
        assert res.info["deferred_stores"] > res.info["vector_checks"]
        if interval >= 8:
            assert res.info["bounds_checks"] > res.info["full_checks"]

    def test_deferred_cg_iteration_count_matches_eager(self):
        matrix, b, _ = self.make_system(12, seed=9)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        eager = protected_cg_run(pmat, b, eps=1e-24, vector_scheme="secded64")
        deferred = protected_cg_run(
            pmat, b, eps=1e-24,
            policy=CheckPolicy(interval=16, correct=False),
            vector_scheme="secded64",
        )
        assert abs(deferred.iterations - eager.iterations) <= 1

    def test_deferred_cg_detects_preexisting_vector_corruption(self):
        """End-to-end: corruption that appears mid-solve in a protected
        state vector is flagged by a scheduled check, not returned."""
        matrix, b, _ = self.make_system()
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        pmat.colidx[1] ^= np.uint32(1) << np.uint32(3)
        with pytest.raises(DetectedUncorrectableError):
            protected_cg_run(
                pmat, b, eps=1e-24,
                policy=CheckPolicy(interval=8, correct=False),
                vector_scheme="secded64",
            )

    def test_protected_ppcg_matches_plain(self):
        matrix, b, x_true = self.make_system(12, seed=11)
        plain = ppcg_solve(matrix, b, eps=1e-24, inner_steps=4)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        prot = protected_ppcg_run(
            pmat, b, eps=1e-24, inner_steps=4, vector_scheme="secded64",
        )
        assert prot.converged
        assert np.allclose(prot.x, x_true, atol=1e-7)
        assert abs(prot.iterations - plain.iterations) <= 2

    def test_protected_ppcg_deferred_schedule(self):
        matrix, b, x_true = self.make_system(12, seed=13)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        res = protected_ppcg_run(
            pmat, b, eps=1e-24, inner_steps=4,
            policy=CheckPolicy(interval=16, correct=False),
            vector_scheme="secded64",
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)
        assert res.info["bounds_checks"] > res.info["full_checks"]

    def test_deferred_cg_unprotected_vectors_still_schedules_matrix(self):
        matrix, b, x_true = self.make_system()
        pmat = ProtectedCSRMatrix(matrix, "crc32c", "crc32c")
        res = protected_cg_run(
            pmat, b, eps=1e-24,
            policy=CheckPolicy(interval=8, correct=False),
            vector_scheme=None,
        )
        assert np.allclose(res.x, x_true, atol=1e-7)
        assert res.info["vector_checks"] == 0
        assert res.info["bounds_checks"] > 0


class TestEngineBookkeeping:
    def test_supplied_engine_policy_drives_solve_and_info(self):
        """A caller-built engine's policy must own scheduling AND stats."""
        matrix = make_matrix()
        rng = np.random.default_rng(21)
        b = matrix.matvec(rng.standard_normal(matrix.n_cols))
        policy = CheckPolicy(interval=16, correct=False)
        engine = DeferredVerificationEngine(policy)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        res = protected_cg_run(
            pmat, b, eps=1e-24, vector_scheme="secded64", engine=engine
        )
        assert res.converged
        assert res.info["full_checks"] == policy.stats.full_checks > 0
        assert res.info["bounds_checks"] == policy.stats.bounds_checks > 0
        # Transient state vectors are released so a shared engine does
        # not accumulate dead registrations across solves.
        assert len(engine._vectors) == 0
        assert len(engine._matrices) == 1

    def test_conflicting_policy_and_engine_rejected(self):
        from repro.errors import ConfigurationError

        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        engine = DeferredVerificationEngine(CheckPolicy(interval=16))
        with pytest.raises(ConfigurationError):
            protected_cg_run(
                pmat, np.ones(matrix.n_rows),
                policy=CheckPolicy(interval=1), engine=engine,
            )

    def test_register_rejects_unknown_regions(self):
        from repro.errors import ConfigurationError

        engine = DeferredVerificationEngine()
        with pytest.raises(ConfigurationError):
            engine.register(np.zeros(4))

    def test_cached_view_shares_storage_across_reads(self):
        engine = DeferredVerificationEngine(CheckPolicy(interval=4))
        vec = ProtectedVector(np.ones(16), "secded64")
        first = engine.read(vec)
        second = engine.read(vec)
        assert first is second
        assert not first.flags.writeable

    def test_matrix_clean_views_persistent_across_checks(self):
        """The snapshot buffers are allocated once and refilled in place."""
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        colidx1, rowptr1 = pmat.clean_views()
        colidx2, rowptr2 = pmat.clean_views()
        assert colidx1 is colidx2 and rowptr1 is rowptr2
        assert colidx1.dtype == np.int64 and rowptr1.dtype == np.int64
        pmat.check_all()
        colidx3, _ = pmat.clean_views()
        assert colidx3 is colidx1  # persistent buffer, not a fresh decode

    def test_clean_views_refreshed_after_correction(self):
        """A corrected index flip must reach the refilled snapshot."""
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        before = pmat.clean_views()[0].copy()
        pmat.colidx[3] ^= np.uint32(1) << np.uint32(2)
        pmat.check_all(correct=True)  # repairs the flip in storage
        after = pmat.clean_views()[0]
        assert np.array_equal(after, before)
