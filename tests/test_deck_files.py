"""Deck-file integration: the shipped example deck drives a real run."""

import pathlib

import numpy as np
import pytest

from repro.tealeaf import TeaLeafDriver, parse_deck, total_energy

DECK_PATH = pathlib.Path(__file__).parent.parent / "examples" / "decks" / "tea_bm_short.in"


class TestShippedDeck:
    def test_parses(self):
        deck = parse_deck(DECK_PATH.read_text())
        assert deck.x_cells == 128 and deck.y_cells == 128
        assert deck.end_step == 3
        assert deck.solver == "cg"
        assert deck.tl_eps == 1e-15
        assert len(deck.states) == 2
        assert deck.states[1].density == 0.1

    def test_comment_lines_ignored(self):
        deck = parse_deck(DECK_PATH.read_text())
        # The "! The paper's configuration..." comment must not leak in.
        assert deck.tl_max_iters == 10000

    def test_runs_scaled_down(self):
        deck = parse_deck(DECK_PATH.read_text())
        deck.x_cells = deck.y_cells = 32  # keep the test fast
        driver = TeaLeafDriver(deck)
        e0 = total_energy(driver.state)
        summary = driver.run()
        assert all(s.converged for s in summary.steps)
        assert total_energy(driver.state) == pytest.approx(e0, rel=1e-9)
        # Heat spreads: the cold region warms up.
        assert driver.state.u.min() > 0

    def test_roundtrip_preserves_run(self):
        deck = parse_deck(DECK_PATH.read_text())
        deck.x_cells = deck.y_cells = 16
        deck.end_step = 1
        twin = parse_deck(deck.to_text())
        a = TeaLeafDriver(deck)
        b = TeaLeafDriver(twin)
        a.run()
        b.run()
        assert np.array_equal(a.state.u, b.state.u)
