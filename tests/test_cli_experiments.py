"""CLI experiment commands and report-formatting edge cases."""

import pytest

from repro.__main__ import build_parser, main
from repro.harness.experiments import ExperimentRow
from repro.harness.report import format_interval_series, format_table


class TestCLIExperimentCommands:
    def test_overheads_single_figure(self, capsys):
        assert main(["overheads", "--figures", "fig5", "--grid", "48",
                     "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "host" in out

    def test_intervals_single_figure(self, capsys):
        assert main(["intervals", "--figures", "fig6", "--grid", "48",
                     "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "N=" in out

    def test_parser_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overheads", "--figures", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tealeaf_deck_file(self, capsys, tmp_path):
        deck = tmp_path / "tiny.in"
        deck.write_text(
            "*tea\nstate 1 density=1.0 energy=1.0\n"
            "x_cells=8\ny_cells=8\nend_step=1\ntl_use_cg\n*endtea\n"
        )
        assert main(["tealeaf", str(deck)]) == 0
        assert "field summary" in capsys.readouterr().out


class TestReportEdgeCases:
    def test_format_table_missing_cells(self):
        rows = [
            ExperimentRow("figX", "a", "sed", 0.1, "model", paper_value=0.12),
            ExperimentRow("figX", "b", "crc32c", 0.5, "measured"),
        ]
        table = format_table(rows)
        assert "sed" in table and "crc32c" in table
        assert "    -%" in table  # the missing cells render as dashes

    def test_format_table_without_title(self):
        rows = [ExperimentRow("figX", "a", "sed", 0.1, "model")]
        assert not format_table(rows).startswith("\n")

    def test_format_interval_sparse_series(self):
        rows = [
            ExperimentRow("figY", "a", "1", 0.5, "model"),
            ExperimentRow("figY", "a", "8", 0.1, "model"),
            ExperimentRow("figY", "b", "8", 0.2, "measured"),
        ]
        table = format_interval_series(rows, "T")
        assert table.startswith("T")
        assert "-%" in table  # series b has no N=1 point

    def test_percent_scaling(self):
        rows = [ExperimentRow("f", "s", "sed", 0.305, "model")]
        assert "30.5%" in format_table(rows).replace(" ", "")
