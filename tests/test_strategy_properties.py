"""System-level hypothesis properties across the whole protection stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.float_bits import f64_to_u64
from repro.csr import csr_from_coo, five_point_operator
from repro.protect import ProtectedCSRMatrix, ProtectedVector
from repro.solvers import cg_solve, protected_cg_run

ELEMENT_SCHEMES = st.sampled_from(["sed", "secded64", "secded128", "crc32c"])
VECTOR_SCHEMES = st.sampled_from(["sed", "secded64", "secded128", "crc32c"])


@given(
    st.integers(2, 7), st.integers(2, 7),
    ELEMENT_SCHEMES, ELEMENT_SCHEMES,
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_protection_never_changes_spmv(nx, ny, es, rs, seed):
    """Protecting a matrix is arithmetically invisible (values untouched,
    indices cleaned exactly) on arbitrary grids."""
    rng = np.random.default_rng(seed)
    A = five_point_operator(
        nx, ny, rng.uniform(0.1, 3.0, (ny, nx)), rng.uniform(0.1, 3.0, (ny, nx)),
        rng.uniform(0.05, 1.0),
    )
    pmat = ProtectedCSRMatrix(A, es, rs)
    x = rng.standard_normal(A.n_cols)
    assert np.array_equal(pmat.matvec_unchecked(x), A.matvec(x))


@given(
    VECTOR_SCHEMES,
    st.lists(
        st.floats(min_value=-1e100, max_value=1e100,
                  allow_nan=False, allow_infinity=False,
                  allow_subnormal=False),
        min_size=1, max_size=40,
    ),
)
@settings(max_examples=50, deadline=None)
def test_vector_mask_error_bound(scheme, values):
    """values() differs from the input by at most 2**-44 relative for
    *normal* floats (subnormals lack the implicit leading 1, so the
    relative bound doesn't apply there — see float_bits docs)."""
    x = np.array(values)
    vec = ProtectedVector(x, scheme)
    got = vec.values()
    nonzero = x != 0.0
    if nonzero.any():
        rel = np.abs(got[nonzero] - x[nonzero]) / np.abs(x[nonzero])
        assert rel.max() < 2.0**-43
    assert np.array_equal(got[~nonzero], x[~nonzero])


@given(
    ELEMENT_SCHEMES,
    st.integers(0, 2**32 - 1),
    st.data(),
)
@settings(max_examples=30, deadline=None)
def test_corrected_matrix_solves_identically(scheme, seed, data):
    """After a correctable flip + check, the protected solve equals the
    unperturbed one bit-for-bit (correction is exact, not approximate)."""
    if scheme == "sed":
        return  # SED cannot correct
    rng = np.random.default_rng(seed)
    A = five_point_operator(
        5, 5, rng.uniform(0.5, 2.0, (5, 5)), rng.uniform(0.5, 2.0, (5, 5)), 0.3
    )
    b = rng.standard_normal(A.n_rows)
    reference = protected_cg_run(
        ProtectedCSRMatrix(A, scheme, scheme), b, eps=1e-22, vector_scheme=None
    )
    pmat = ProtectedCSRMatrix(A, scheme, scheme)
    elem = data.draw(st.integers(0, pmat.nnz - 1))
    bit = data.draw(st.integers(0, 63))
    f64_to_u64(pmat.values)[elem] ^= np.uint64(1) << np.uint64(bit)
    repaired = protected_cg_run(pmat, b, eps=1e-22, vector_scheme=None)
    assert np.array_equal(repaired.x, reference.x)


@given(st.integers(0, 2**32 - 1), st.integers(3, 20))
@settings(max_examples=25, deadline=None)
def test_random_spd_systems_protected_cg(seed, n):
    """Random (dense-ish) SPD systems, not just stencils: build via
    B^T B + n I, protect, solve, compare against plain CG."""
    rng = np.random.default_rng(seed)
    B = rng.standard_normal((n, n))
    dense = B.T @ B + n * np.eye(n)
    rows, cols = np.nonzero(dense)
    A = csr_from_coo(rows, cols, dense[rows, cols], (n, n))
    b = rng.standard_normal(n)
    plain = cg_solve(A, b, eps=1e-24, max_iters=20 * n)
    prot = protected_cg_run(
        ProtectedCSRMatrix(A, "secded64", "secded64"), b,
        eps=1e-24, max_iters=20 * n, vector_scheme=None,
    )
    assert np.allclose(prot.x, plain.x, rtol=1e-8, atol=1e-10)
