"""Solver tests: CG, Jacobi, Chebyshev, PPCG against direct solutions."""

import numpy as np
import pytest

from repro.csr import csr_from_dense, five_point_operator
from repro.solvers import (
    JacobiPreconditioner,
    LinearOperator,
    as_operator,
    cg_solve,
    chebyshev_solve,
    estimate_eigenvalue_bounds,
    jacobi_solve,
    ppcg_solve,
    protected_cg_run,
)
from repro.protect import CheckPolicy, ProtectedCSRMatrix


def make_system(nx=8, ny=7, seed=0):
    rng = np.random.default_rng(seed)
    A = five_point_operator(
        nx, ny, rng.uniform(0.5, 2.0, (ny, nx)), rng.uniform(0.5, 2.0, (ny, nx)), 0.4
    )
    x_true = rng.standard_normal(nx * ny)
    b = A.matvec(x_true)
    return A, b, x_true


class TestCG:
    def test_solves_spd_system(self):
        A, b, x_true = make_system()
        res = cg_solve(A, b, eps=1e-24)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-9)

    def test_residual_monotone_overall(self):
        A, b, _ = make_system()
        res = cg_solve(A, b, eps=1e-24)
        # CG residuals can oscillate locally but must shrink overall.
        assert res.residual_norms[-1] < 1e-3 * res.residual_norms[0]

    def test_max_iters_respected(self):
        A, b, _ = make_system()
        res = cg_solve(A, b, eps=1e-30, max_iters=3)
        assert res.iterations == 3
        assert not res.converged

    def test_warm_start(self):
        A, b, x_true = make_system()
        res = cg_solve(A, b, x0=x_true)
        assert res.converged
        assert res.iterations == 0

    def test_jacobi_preconditioner_reduces_iterations(self):
        rng = np.random.default_rng(1)
        # Badly scaled diagonal makes plain CG crawl.
        scale = np.exp(rng.uniform(0, 6, 40))
        dense = np.diag(scale) + 0.01 * np.ones((40, 40))
        A = csr_from_dense(dense)
        b = rng.standard_normal(40)
        plain = cg_solve(A, b, eps=1e-20, max_iters=500)
        precond = cg_solve(
            A, b, eps=1e-20, max_iters=500,
            preconditioner=JacobiPreconditioner.from_operator(as_operator(A)),
        )
        assert precond.iterations < plain.iterations

    def test_operator_protocol(self):
        A, b, x_true = make_system()
        op = LinearOperator(A.matvec, A.n_rows, A.diagonal)
        res = cg_solve(op, b, eps=1e-24)
        assert np.allclose(res.x, x_true, atol=1e-9)

    def test_as_operator_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_operator(42)


class TestJacobi:
    def test_converges_on_dominant_system(self):
        A, b, x_true = make_system()
        res = jacobi_solve(A, b, eps=1e-24, max_iters=5000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_slower_than_cg(self):
        A, b, _ = make_system()
        cg_iters = cg_solve(A, b, eps=1e-20).iterations
        jac_iters = jacobi_solve(A, b, eps=1e-20, max_iters=5000).iterations
        assert jac_iters > cg_iters


class TestChebyshev:
    def test_eigenvalue_bounds_bracket_spectrum(self):
        A, _, _ = make_system(6, 6)
        lo, hi = estimate_eigenvalue_bounds(A, iters=36)
        eigs = np.linalg.eigvalsh(A.to_dense())
        assert lo <= eigs[0] * 1.01
        assert hi >= eigs[-1] * 0.99

    def test_converges_with_good_bounds(self):
        A, b, x_true = make_system()
        eigs = np.linalg.eigvalsh(A.to_dense())
        res = chebyshev_solve(
            A, b, eig_min=eigs[0] * 0.95, eig_max=eigs[-1] * 1.05,
            eps=1e-24, max_iters=2000,
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_rejects_bad_bounds(self):
        A, b, _ = make_system()
        with pytest.raises(ValueError):
            chebyshev_solve(A, b, eig_min=2.0, eig_max=1.0)


class TestPPCG:
    def test_converges(self):
        A, b, x_true = make_system()
        res = ppcg_solve(A, b, eps=1e-24)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_fewer_outer_iterations_than_cg(self):
        A, b, _ = make_system(12, 12, seed=3)
        cg_iters = cg_solve(A, b, eps=1e-20).iterations
        ppcg_iters = ppcg_solve(A, b, eps=1e-20, inner_steps=6).iterations
        assert ppcg_iters < cg_iters


class TestProtectedCG:
    @pytest.mark.parametrize("vector_scheme", [None, "sed", "secded64", "crc32c"])
    def test_matches_plain_cg_solution(self, vector_scheme):
        A, b, x_true = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        res = protected_cg_run(
            pmat, b, eps=1e-24, vector_scheme=vector_scheme
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_iteration_overhead_below_one_percent(self):
        """Paper: LSB noise costs < 1% extra iterations."""
        A, b, _ = make_system(16, 16, seed=5)
        plain = cg_solve(A, b, eps=1e-24)
        prot = protected_cg_run(
            ProtectedCSRMatrix(A, "secded64", "secded64"),
            b, eps=1e-24, vector_scheme="secded64",
        )
        assert prot.iterations <= int(np.ceil(plain.iterations * 1.01)) + 1

    def test_check_interval_reduces_full_checks(self):
        A, b, _ = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        policy = CheckPolicy(interval=8, correct=False)
        res = protected_cg_run(pmat, b, eps=1e-24, policy=policy, vector_scheme=None)
        assert res.info["bounds_checks"] > res.info["full_checks"]

    def test_end_of_step_sweep_counted(self):
        A, b, _ = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        policy = CheckPolicy(interval=1000, correct=False)
        res = protected_cg_run(pmat, b, eps=1e-24, policy=policy, vector_scheme=None)
        # Initial forced check + final mandatory sweep at minimum.
        assert res.info["full_checks"] >= 2

    def test_element_only_protection(self):
        A, b, x_true = make_system()
        pmat = ProtectedCSRMatrix(A, "crc32c", None)
        res = protected_cg_run(pmat, b, eps=1e-24, vector_scheme=None)
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_rowptr_only_protection(self):
        A, b, x_true = make_system()
        pmat = ProtectedCSRMatrix(A, None, "crc32c")
        res = protected_cg_run(pmat, b, eps=1e-24, vector_scheme=None)
        assert np.allclose(res.x, x_true, atol=1e-7)
