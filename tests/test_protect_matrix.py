"""ProtectedCSRMatrix, CheckPolicy and protected kernels."""

import itertools

import numpy as np
import pytest

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.errors import BoundsViolationError, DetectedUncorrectableError
from repro.protect import (
    CheckPolicy,
    ProtectedCSRMatrix,
    ProtectedVector,
    protected_axpy,
    protected_dot,
    protected_spmv,
)

ELEMENT = ["sed", "secded64", "secded128", "crc32c"]
ROWPTR = ["sed", "secded64", "secded128", "crc32c"]


def make_matrix(nx=6, ny=5, seed=0):
    rng = np.random.default_rng(seed)
    return five_point_operator(
        nx, ny, rng.uniform(0.5, 2.0, (ny, nx)), rng.uniform(0.5, 2.0, (ny, nx)), 0.3
    )


class TestCombinations:
    @pytest.mark.parametrize("es,rs", list(itertools.product(ELEMENT, ROWPTR)))
    def test_all_mixes_spmv_exact(self, es, rs):
        """Every element x rowptr mix reproduces the unprotected SpMV bit-exactly."""
        op = make_matrix()
        prot = ProtectedCSRMatrix(op, es, rs)
        x = np.random.default_rng(1).standard_normal(op.n_cols)
        assert np.array_equal(prot.matvec_unchecked(x), op.matvec(x))

    def test_to_csr_roundtrip(self):
        op = make_matrix()
        prot = ProtectedCSRMatrix(op, "secded64", "crc32c")
        back = prot.to_csr()
        assert np.array_equal(back.values, op.values)
        assert np.array_equal(back.colidx, op.colidx)
        assert np.array_equal(back.rowptr, op.rowptr)

    def test_source_matrix_untouched(self):
        op = make_matrix()
        vals0, idx0, ptr0 = op.values.copy(), op.colidx.copy(), op.rowptr.copy()
        ProtectedCSRMatrix(op, "crc32c", "crc32c")
        assert np.array_equal(op.values, vals0)
        assert np.array_equal(op.colidx, idx0)
        assert np.array_equal(op.rowptr, ptr0)


class TestChecks:
    def test_check_all_clean(self):
        prot = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        reports = prot.check_all()
        assert reports["csr_elements"].clean
        assert reports["row_pointer"].clean
        assert not prot.detect_any()

    def test_element_corruption_detected_and_corrected(self):
        prot = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        f64_to_u64(prot.values)[10] ^= np.uint64(1) << np.uint64(30)
        assert prot.detect_any()
        reports = prot.check_all()
        assert reports["csr_elements"].n_corrected == 1
        assert not prot.detect_any()

    def test_rowptr_corruption_detected(self):
        prot = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        prot.rowptr[4] ^= np.uint32(4)
        reports = prot.check_all()
        assert reports["row_pointer"].n_corrected == 1

    def test_check_or_raise(self):
        prot = ProtectedCSRMatrix(make_matrix(), "sed", "sed")
        prot.values[3] = 99.0  # SED detects, cannot correct
        with pytest.raises(DetectedUncorrectableError) as err:
            prot.check_or_raise()
        assert err.value.region == "csr_elements"

    def test_bounds_check_passes_clean(self):
        prot = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        prot.bounds_check()  # no raise

    def test_bounds_check_catches_huge_colidx(self):
        prot = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        prot.colidx[7] = (prot.colidx[7] & np.uint32(0xFF000000)) | np.uint32(
            0x00FFFFFF
        )
        with pytest.raises(BoundsViolationError):
            prot.bounds_check()

    def test_bounds_check_catches_rowptr_overflow(self):
        prot = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        prot.rowptr[3] = np.uint32(0x0FFFFFFF)
        with pytest.raises(BoundsViolationError):
            prot.bounds_check()

    def test_bounds_check_catches_non_monotone_rowptr(self):
        prot = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        clean = prot.rowptr_protected.clean()
        prot.rowptr[5] = clean[7]
        prot.rowptr[7] = clean[5]
        with pytest.raises(BoundsViolationError):
            prot.bounds_check()


class TestPolicy:
    def test_interval_one_checks_every_access(self):
        policy = CheckPolicy(interval=1)
        assert all(policy.should_check() for _ in range(5))

    def test_interval_n_pattern(self):
        policy = CheckPolicy(interval=4)
        pattern = [policy.should_check() for _ in range(9)]
        assert pattern == [True, False, False, False, True, False, False, False, True]

    def test_interval_zero_never_checks(self):
        policy = CheckPolicy(interval=0)
        assert not any(policy.should_check() for _ in range(5))
        assert not policy.end_of_step()

    def test_end_of_step_required_only_with_deferral(self):
        assert not CheckPolicy(interval=1).end_of_step()
        assert CheckPolicy(interval=8).end_of_step()

    def test_reset_restarts_phase(self):
        policy = CheckPolicy(interval=3)
        policy.should_check()
        policy.should_check()
        policy.reset()
        assert policy.should_check()

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            CheckPolicy(interval=-1)


class TestKernels:
    def test_protected_spmv_counts_checks(self):
        op = make_matrix()
        prot = ProtectedCSRMatrix(op, "secded64", "secded64")
        policy = CheckPolicy(interval=2)
        x = np.ones(op.n_cols)
        for _ in range(6):
            protected_spmv(prot, x, policy)
        assert policy.stats.full_checks == 3
        assert policy.stats.bounds_checks == 3

    def test_protected_spmv_corrects_and_matches(self):
        op = make_matrix()
        prot = ProtectedCSRMatrix(op, "secded64", "secded64")
        x = np.random.default_rng(2).standard_normal(op.n_cols)
        expected = op.matvec(x)
        f64_to_u64(prot.values)[8] ^= np.uint64(1) << np.uint64(44)
        policy = CheckPolicy(interval=1, correct=True)
        got = protected_spmv(prot, x, policy)
        assert np.array_equal(got, expected)
        assert policy.stats.corrected == 1

    def test_protected_spmv_raises_on_due(self):
        op = make_matrix()
        prot = ProtectedCSRMatrix(op, "sed", "sed")
        prot.values[0] = 123.0
        with pytest.raises(DetectedUncorrectableError):
            protected_spmv(prot, np.ones(op.n_cols), CheckPolicy(interval=1))

    def test_protected_spmv_with_protected_vector(self):
        op = make_matrix()
        prot = ProtectedCSRMatrix(op, "secded64", "secded64")
        xv = np.random.default_rng(3).standard_normal(op.n_cols)
        px = ProtectedVector(xv, "secded64")
        got = protected_spmv(prot, px, CheckPolicy(interval=1))
        assert np.allclose(got, op.matvec(xv), rtol=1e-12)

    def test_protected_dot_and_axpy(self):
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal(32), rng.standard_normal(32)
        pa = ProtectedVector(a, "secded64")
        pb = ProtectedVector(b, "secded64")
        assert np.isclose(protected_dot(pa, pb), np.dot(pa.values(), pb.values()))
        expected = 2.5 * pa.values() + pb.values()
        protected_axpy(2.5, pa, pb)
        # Stored result is the masked version of `expected`.
        assert np.allclose(pb.values(), expected, rtol=1e-12)
        assert pb.check().clean

    def test_axpy_raises_on_corrupt_input(self):
        pa = ProtectedVector(np.ones(8), "sed")
        pb = ProtectedVector(np.ones(8), "sed")
        f64_to_u64(pa.raw)[2] ^= np.uint64(1) << np.uint64(20)
        with pytest.raises(DetectedUncorrectableError):
            protected_axpy(1.0, pa, pb)
