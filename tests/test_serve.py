"""The serving layer: job model, caches, batching, journal resume, wire.

The acceptance bars (ISSUE 6):

* batched same-matrix solves demonstrably reuse ONE encoded matrix — the
  cache's encode counter is asserted, not assumed;
* a killed server restarted on the same journal re-adopts in-flight jobs
  and completes them with no duplicate solves (probe marker files count
  executions, mirroring the sweeps' resume acceptance);
* a DUE mid-solve under an escalating recovery policy is repaired
  transparently while the job's event stream records it.
"""

import asyncio
import glob
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.serve import workers as serve_workers
from repro.serve.cache import MatrixCache, SessionPool
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.jobs import (
    JobValidationError,
    batch_key,
    build_matrix,
    job_key,
    normalise_job,
    protection_canonical,
    protection_from_spec,
    validate_job,
)
from repro.serve.journal import JobJournal
from repro.serve.server import SolveServer
from repro.serve.service import ServeConfig, ServiceOverloadedError, SolveService

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")
DECK_TEXT = (
    Path(__file__).resolve().parents[1] / "examples" / "decks" / "tea_bm_short.in"
).read_text()


def five_point_job(b_seed=0, grid=10, matrix_seed=3, protection="deferred", **extra):
    job = {
        "matrix": {"kind": "five-point", "grid": grid, "seed": matrix_seed},
        "b": {"seed": b_seed}, "method": "cg", "eps": 1e-10,
        "protection": protection,
    }
    job.update(extra)
    return job


@pytest.fixture
def fresh_workers(monkeypatch):
    """Isolate each test from the process-global warm caches."""
    monkeypatch.setattr(serve_workers, "CACHE", MatrixCache())
    monkeypatch.setattr(serve_workers, "SESSIONS", SessionPool())
    return serve_workers


def run_service(jobs, **config):
    """Submit ``jobs`` to a fresh in-process service; return their records."""

    async def main():
        service = SolveService(ServeConfig(**config))
        await service.start()
        submits = [await service.submit(job) for job in jobs]
        records = [await service.result(s["job_id"]) for s in submits]
        events = {s["job_id"]: list(service._events[s["job_id"]]) for s in submits}
        status = service.status()
        await service.stop()
        return records, events, status

    return asyncio.run(main())


# ---------------------------------------------------------------------------
class TestJobModel:
    def test_identity_derives_from_content(self):
        a = normalise_job(five_point_job(b_seed=1))
        b = normalise_job(five_point_job(b_seed=1))
        c = normalise_job(five_point_job(b_seed=2))
        assert a["job_id"] == b["job_id"]
        assert a["job_id"] != c["job_id"]
        assert job_key(a) == job_key(b)

    def test_explicit_job_id_is_kept_and_excluded_from_identity(self):
        a = normalise_job(five_point_job(job_id="mine"))
        b = normalise_job(five_point_job())
        assert a["job_id"] == "mine"
        assert job_key(a) == job_key(b)

    def test_batch_key_groups_same_matrix_same_protection(self):
        a = normalise_job(five_point_job(b_seed=1))
        b = normalise_job(five_point_job(b_seed=2))
        c = normalise_job(five_point_job(b_seed=1, protection="paper_default"))
        d = normalise_job(five_point_job(b_seed=1, matrix_seed=9))
        assert batch_key(a) == batch_key(b)
        assert batch_key(a) != batch_key(c)
        assert batch_key(a) != batch_key(d)

    def test_inject_jobs_never_share_a_batch(self):
        a = normalise_job(five_point_job(b_seed=1, inject={"rate": 1e-6, "seed": 0}))
        b = normalise_job(five_point_job(b_seed=2, inject={"rate": 1e-6, "seed": 0}))
        assert batch_key(a) != batch_key(b)

    def test_protection_spellings_canonicalise_together(self):
        explicit = {"preset": "deferred", "window": 16}
        assert protection_canonical("deferred") == protection_canonical(explicit)
        assert protection_canonical(None) == protection_canonical("off")
        assert protection_from_spec(
            {"recovery": {"strategy": "rollback"}}
        ).recovery.strategy == "rollback"

    @pytest.mark.parametrize("bad", [
        {"b": [1.0]},                                             # no matrix
        {"matrix": {"kind": "warp"}, "b": [1.0]},                 # unknown kind
        {"matrix": {"kind": "five-point", "grid": 9999}, "b": {"seed": 0}},
        {"matrix": {"kind": "five-point"}, "b": {"seed": 0}, "eps": -1.0},
        {"matrix": {"kind": "five-point"}, "b": {"seed": 0}, "max_iters": 0},
        {"matrix": {"kind": "five-point"}, "b": {"seed": 0}, "surprise": 1},
        {"matrix": {"kind": "five-point"}, "b": [float("nan")] * 4},
        {"matrix": {"kind": "five-point"}, "b": {"seed": 0},
         "inject": {"rate": 2.0}},
        {"matrix": {"kind": "five-point"}, "b": {"seed": 0},
         "protection": "ironclad"},
        {"matrix": {"kind": "csr", "values": [float("inf")], "colidx": [0],
                    "rowptr": [0, 1], "shape": [1, 1]}, "b": [1.0]},
    ])
    def test_untrusted_jobs_are_rejected_at_validation(self, bad):
        with pytest.raises(JobValidationError):
            validate_job(bad)

    def test_rhs_shape_mismatch_rejected(self):
        job = normalise_job(five_point_job(grid=4))
        job["b"] = [1.0, 2.0]
        from repro.serve.jobs import build_rhs

        with pytest.raises(JobValidationError):
            build_rhs(job, 16)

    def test_deck_handle_builds_system_with_deck_rhs(self):
        job = normalise_job({"matrix": {"kind": "deck", "text": DECK_TEXT}})
        assert job["b"] == "deck"
        matrix = build_matrix(job["matrix"])
        from repro.serve.jobs import build_rhs

        rhs = build_rhs(job, matrix.n_rows)
        assert rhs.shape == (matrix.n_rows,)
        assert np.all(np.isfinite(rhs))


# ---------------------------------------------------------------------------
class TestMatrixCache:
    def test_encode_once_then_hits(self):
        cache = MatrixCache()
        spec = {"kind": "five-point", "grid": 8, "seed": 0}
        first = cache.encoded(spec, "deferred")
        again = cache.encoded(spec, "deferred")
        assert first is again
        assert cache.stats == {"builds": 1, "encodes": 1, "hits": 1,
                               "invalidations": 0}

    def test_distinct_protection_encodes_separately(self):
        cache = MatrixCache()
        spec = {"kind": "five-point", "grid": 8, "seed": 0}
        a = cache.encoded(spec, "deferred")
        b = cache.encoded(spec, "paper_default")
        assert a is not b
        assert cache.stats["encodes"] == 2
        assert cache.stats["builds"] == 1  # raw build shared

    def test_invalidate_forces_reencode(self):
        cache = MatrixCache()
        spec = {"kind": "five-point", "grid": 8, "seed": 0}
        first = cache.encoded(spec, "deferred")
        cache.invalidate(spec, "deferred")
        second = cache.encoded(spec, "deferred")
        assert first is not second
        assert cache.stats["invalidations"] == 1
        assert cache.stats["encodes"] == 2

    def test_unprotected_specs_have_nothing_to_encode(self):
        cache = MatrixCache()
        spec = {"kind": "five-point", "grid": 8, "seed": 0}
        assert cache.encoded(spec, None) is None
        assert cache.stats["encodes"] == 0

    def test_bounded_eviction(self):
        cache = MatrixCache(max_entries=2)
        for seed in range(4):
            cache.raw({"kind": "five-point", "grid": 6, "seed": seed})
        assert len(cache._raw) == 2

    def test_session_pool_warms_and_reuses(self):
        pool = SessionPool()
        spec = {"kind": "five-point", "grid": 8, "seed": 0}
        one = pool.get(spec, "deferred")
        two = pool.get(spec, "deferred")
        assert one is two
        assert pool.get(spec, None) is None
        assert pool.stats == {"created": 1, "reused": 1}


# ---------------------------------------------------------------------------
class TestJournal:
    def test_reopen_is_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        a = normalise_job(five_point_job(b_seed=1))
        b = normalise_job(five_point_job(b_seed=2))
        journal.record_submitted(a)
        journal.record_submitted(b)
        journal.record_result(a["job_id"], {"job_id": a["job_id"],
                                            "status": "done", "x_norm": 1.0})
        journal.close()

        reopened = JobJournal(path)
        pending = reopened.pending()
        assert [p["job_id"] for p in pending] == [b["job_id"]]
        assert reopened.result(a["job_id"])["x_norm"] == 1.0
        assert reopened.result(b["job_id"]) is None
        assert reopened.summary() == {"submitted": 1, "done": 1}

    def test_torn_final_line_drops_only_that_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        job = normalise_job(five_point_job())
        journal.record_submitted(job)
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"key": "job-torn", "status": "subm')
        reopened = JobJournal(path)
        assert [p["job_id"] for p in reopened.pending()] == [job["job_id"]]


# ---------------------------------------------------------------------------
class TestServiceBatching:
    def test_same_matrix_jobs_reuse_one_encoded_matrix(self, fresh_workers):
        jobs = [five_point_job(b_seed=i) for i in range(6)]
        records, _, status = run_service(jobs, batch_window=0.01)
        assert all(r["status"] == "done" and r["converged"] for r in records)
        # The acceptance assertion: six solves, ONE encode.  The blocked
        # multi-RHS path serves the whole group off a single cache
        # acquisition, so "reuse" shows up as either cache hits (solo
        # solves) or jobs served by the blocked group.
        assert status["cache"]["encodes"] == 1
        assert status["cache"]["hits"] + status["stats"]["blocked_jobs"] >= 5
        assert status["sessions"]["created"] == 1

    def test_distinct_matrices_split_batches(self, fresh_workers):
        jobs = [five_point_job(b_seed=i, matrix_seed=i % 2) for i in range(4)]
        records, _, status = run_service(jobs, batch_window=0.01)
        assert all(r["status"] == "done" for r in records)
        assert status["cache"]["encodes"] == 2

    def test_served_solutions_match_direct_solve(self, fresh_workers):
        job = five_point_job(b_seed=5, return_x=True)
        records, _, _ = run_service([job])
        matrix = build_matrix(job["matrix"])
        b = np.random.default_rng(5).standard_normal(matrix.n_rows)
        reference = repro.solve(matrix, b, method="cg", eps=1e-10)
        assert np.allclose(records[0]["x"], reference.x, rtol=1e-8, atol=1e-10)

    def test_unprotected_jobs_run_plain(self, fresh_workers):
        records, _, status = run_service([five_point_job(protection=None)])
        assert records[0]["status"] == "done"
        assert status["cache"]["encodes"] == 0

    def test_event_stream_shape(self, fresh_workers):
        _, events, _ = run_service([five_point_job()])
        names = [e["event"] for e in next(iter(events.values()))]
        assert names == ["accepted", "started", "done"]

    def test_resubmission_is_a_cache_hit(self, fresh_workers):
        async def main():
            service = SolveService()
            await service.start()
            first = await service.submit(five_point_job(b_seed=3))
            await service.result(first["job_id"])
            second = await service.submit(five_point_job(b_seed=3))
            status = service.status()
            await service.stop()
            return first, second, status

        first, second, status = asyncio.run(main())
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["job_id"] == first["job_id"]
        assert status["stats"]["cached_hits"] == 1
        assert status["stats"]["solved"] == 1

    def test_rejected_jobs_raise_and_count(self, fresh_workers):
        async def main():
            service = SolveService()
            await service.start()
            with pytest.raises(JobValidationError):
                await service.submit({"matrix": {"kind": "warp"}, "b": [1.0]})
            status = service.status()
            await service.stop()
            return status

        assert asyncio.run(main())["stats"]["rejected"] == 1


# ---------------------------------------------------------------------------
class TestAdmissionQuota:
    """ISSUE 8 satellite: ``max_pending`` bounds the queue at admission."""

    def test_overload_rejects_and_journals_without_poisoning(self, tmp_path,
                                                             fresh_workers):
        journal = str(tmp_path / "jobs.jsonl")

        async def main():
            # batch_window=30 parks the batcher, so submissions pile up
            # in the queue and the quota is what we exercise.
            service = SolveService(ServeConfig(
                journal=journal, batch_window=30.0, max_pending=2))
            await service.start()
            first = await service.submit(five_point_job(b_seed=0))
            await service.submit(five_point_job(b_seed=1))
            with pytest.raises(ServiceOverloadedError):
                await service.submit(five_point_job(b_seed=2))
            # Joining an identical in-flight job adds no queue pressure,
            # so it is admitted even at the quota.
            joined = await service.submit(five_point_job(b_seed=0))
            status = service.status()
            record = service.journal.store.get(
                normalise_job(five_point_job(b_seed=2))["job_id"])
            pending = {job["job_id"] for job in service.journal.pending()}
            await service.stop()
            return first, joined, status, record, pending

        first, joined, status, record, pending = asyncio.run(main())
        assert joined["job_id"] == first["job_id"]
        assert status["stats"]["rejected"] == 1
        assert status["queued"] == 2
        assert record["status"] == "rejected"
        # Non-terminal and non-submitted: never re-adopted, never served
        # as a cached result.
        assert record["key"] not in pending

    def test_rejected_job_resubmits_cleanly_after_drain(self, tmp_path,
                                                        fresh_workers):
        journal = str(tmp_path / "jobs.jsonl")
        job = five_point_job(b_seed=7)

        async def overload():
            service = SolveService(ServeConfig(
                journal=journal, batch_window=30.0, max_pending=1))
            await service.start()
            await service.submit(five_point_job(b_seed=8))
            with pytest.raises(ServiceOverloadedError):
                await service.submit(job)
            await service.stop()

        async def drain():
            service = SolveService(ServeConfig(journal=journal,
                                               batch_window=0.01))
            await service.start()
            adopted = service.stats["adopted"]
            response = await service.submit(job)
            record = await service.result(response["job_id"])
            await service.stop()
            return adopted, response, record

        asyncio.run(overload())
        adopted, response, record = asyncio.run(drain())
        assert adopted == 1  # only the admitted job, not the rejected one
        assert response["cached"] is False  # rejection never cached anything
        assert record["status"] == "done"

    def test_zero_quota_means_unlimited(self, fresh_workers):
        jobs = [five_point_job(b_seed=i) for i in range(4)]
        records, _, status = run_service(jobs, batch_window=0.05)
        assert all(r["status"] == "done" for r in records)
        assert status["stats"]["rejected"] == 0

    def test_overload_is_flagged_retryable_on_the_wire(self, fresh_workers):
        holder, ready = {}, threading.Event()

        def runner():
            async def amain():
                server = SolveServer(SolveService(ServeConfig(
                    batch_window=30.0, max_pending=1)))
                holder["server"] = server
                _, holder["port"] = await server.start()
                ready.set()
                await server.serve_forever()

            asyncio.run(amain())

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert ready.wait(10), "server failed to start"
        client = ServeClient(port=holder["port"])
        try:
            assert client.submit(five_point_job(b_seed=0))["ok"]
            reply = client._roundtrip(
                {"op": "submit", "job": five_point_job(b_seed=1)})
            assert reply["ok"] is False
            assert reply["overloaded"] is True
            assert "retry" in reply["error"]
        finally:
            try:
                client.shutdown()
            except (ServeClientError, OSError):
                pass
            thread.join(10)


# ---------------------------------------------------------------------------
class TestRecoveryEvents:
    """A DUE mid-solve is repaired transparently and shows in the stream."""

    SED_RESILIENT = {
        "element_scheme": "sed", "rowptr_scheme": "sed", "vector_scheme": None,
        "interval": 2, "correct": False,
        "recovery": {"strategy": "rollback", "max_retries": 64,
                     "checkpoint_interval": 4},
    }

    def test_injected_due_recovers_and_streams_the_event(self, fresh_workers):
        # SED detects but never corrects, so every hit is a DUE; scan
        # seeds until a run both injects and recovers (mirrors the
        # PR 4 Poisson acceptance test).
        for seed in range(20):
            job = five_point_job(
                b_seed=101, grid=10, matrix_seed=1,
                protection=self.SED_RESILIENT, eps=1e-22, max_iters=3000,
                inject={"rate": 2e-6, "seed": seed}, return_x=True,
            )
            records, events, _ = run_service([job])
            record = records[0]
            if record.get("dues", 0) >= 1:
                break
        assert record["dues"] >= 1, "no DUE triggered; rate too low"
        assert record["recovered"] >= 1
        assert record["status"] == "done" and record["converged"]
        names = [e["event"] for e in next(iter(events.values()))]
        assert "recovered" in names and "injected" in names
        matrix = build_matrix(job["matrix"])
        b = np.random.default_rng(101).standard_normal(matrix.n_rows)
        reference = repro.solve(matrix, b, method="cg", eps=1e-22)
        assert np.allclose(record["x"], reference.x, rtol=1e-6, atol=1e-9)

    def test_raise_policy_fails_job_and_invalidates_cache(self, fresh_workers):
        protection = dict(self.SED_RESILIENT, recovery=None)
        for seed in range(20):
            bad = five_point_job(
                b_seed=101, grid=10, matrix_seed=1, protection=protection,
                eps=1e-22, max_iters=3000, inject={"rate": 2e-6, "seed": seed},
            )
            records, events, _ = run_service([bad])
            if records[0]["status"] == "failed":
                break
        assert records[0]["status"] == "failed"
        assert records[0].get("dues", 0) >= 1


# ---------------------------------------------------------------------------
class TestServerRoundTrip:
    """The wire protocol end to end over a real localhost socket."""

    @pytest.fixture
    def live_server(self, fresh_workers):
        holder, ready = {}, threading.Event()

        def runner():
            async def amain():
                server = SolveServer(SolveService(ServeConfig(batch_window=0.01)))
                holder["server"] = server
                _, holder["port"] = await server.start()
                ready.set()
                await server.serve_forever()

            asyncio.run(amain())

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert ready.wait(10), "server failed to start"
        yield ServeClient(port=holder["port"])
        try:
            ServeClient(port=holder["port"]).shutdown()
        except (ServeClientError, OSError):
            pass
        thread.join(10)

    def test_submit_stream_result_status(self, live_server):
        response = live_server.submit(five_point_job(b_seed=4))
        events = [e["event"] for e in live_server.stream(response["job_id"])]
        assert events[0] == "accepted" and events[-1] == "done"
        record = live_server.result(response["job_id"])
        assert record["converged"] is True
        status = live_server.status()
        assert status["stats"]["solved"] == 1
        assert status["cache"]["encodes"] == 1

    def test_bad_job_is_rejected_on_the_wire(self, live_server):
        with pytest.raises(ServeClientError):
            live_server.submit({"matrix": {"kind": "warp"}, "b": [1.0]})
        with pytest.raises(ServeClientError):
            live_server.result("job-nonexistent")

    def test_solve_many_convenience(self, live_server):
        records = live_server.solve_many(
            [five_point_job(b_seed=i) for i in range(3)]
        )
        assert [r["status"] for r in records] == ["done"] * 3


# ---------------------------------------------------------------------------
class TestJournalResumeAcceptance:
    """ISSUE 6 acceptance: kill the server, restart, no duplicate solves."""

    def _assert_solved_once(self, probe_dir, n_jobs):
        marks = {
            os.path.basename(path): sum(1 for _ in open(path))
            for path in glob.glob(str(probe_dir / "*.ran"))
        }
        assert len(marks) == n_jobs, f"expected {n_jobs} solved jobs, got {marks}"
        assert set(marks.values()) == {1}, f"duplicate solves: {marks}"

    def test_restarted_service_adopts_pending_jobs(self, tmp_path, monkeypatch,
                                                   fresh_workers):
        probe_dir = tmp_path / "probe"
        probe_dir.mkdir()
        monkeypatch.setenv(serve_workers.PROBE_ENV, str(probe_dir))
        journal = tmp_path / "journal.jsonl"
        jobs = [normalise_job(five_point_job(b_seed=i)) for i in range(4)]

        # Life 1 admits the jobs but dies before dispatching any of them.
        ledger = JobJournal(journal)
        for job in jobs:
            ledger.record_submitted(job)
        ledger.close()

        async def life2():
            service = SolveService(ServeConfig(journal=str(journal)))
            await service.start()
            adopted = service.stats["adopted"]
            records = [await service.result(j["job_id"]) for j in jobs]
            await service.stop()
            return adopted, records

        adopted, records = asyncio.run(life2())
        assert adopted == 4
        assert all(r["status"] == "done" for r in records)
        self._assert_solved_once(probe_dir, 4)

        # Life 3: everything terminal, nothing adopted, nothing re-run.
        async def life3():
            service = SolveService(ServeConfig(journal=str(journal)))
            await service.start()
            response = await service.submit(five_point_job(b_seed=0))
            record = await service.result(response["job_id"])
            await service.stop()
            return service.stats["adopted"], response, record

        adopted3, response, record = asyncio.run(life3())
        assert adopted3 == 0
        assert response["cached"] is True
        assert record["status"] == "done"
        self._assert_solved_once(probe_dir, 4)

    @pytest.mark.slow
    def test_sigkilled_server_resumes_with_no_duplicate_solves(self, tmp_path):
        probe_dir = tmp_path / "probe"
        probe_dir.mkdir()
        journal = tmp_path / "journal.jsonl"
        env = dict(os.environ, PYTHONPATH=REPO_SRC,
                   **{serve_workers.PROBE_ENV: str(probe_dir)})

        def free_port():
            with socket.socket() as sock:
                sock.bind(("127.0.0.1", 0))
                return sock.getsockname()[1]

        def start_server(port):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.serve", "--port", str(port),
                 "--journal", str(journal), "--throttle", "0.15",
                 "--batch-window", "0.05", "--max-batch", "4"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
            for _ in range(100):
                try:
                    socket.create_connection(("127.0.0.1", port),
                                             timeout=0.2).close()
                    return proc
                except OSError:
                    time.sleep(0.1)
            proc.kill()
            raise RuntimeError("server never came up")

        port = free_port()
        proc = start_server(port)
        try:
            client = ServeClient(port=port)
            jobs = [five_point_job(b_seed=i) for i in range(8)]
            ids = [client.submit(job)["job_id"] for job in jobs]

            def journalled_done():
                try:
                    return {
                        json.loads(line)["key"]
                        for line in open(journal)
                        if json.loads(line).get("status") == "done"
                    }
                except (FileNotFoundError, json.JSONDecodeError):
                    return set()

            deadline = time.time() + 30
            while len(journalled_done()) < 2 and time.time() < deadline:
                time.sleep(0.1)
            done_before = journalled_done()
            assert 0 < len(done_before) < len(ids), \
                "kill window missed; tune throttle"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

        port2 = free_port()
        proc2 = start_server(port2)
        try:
            client2 = ServeClient(port=port2)
            records = [client2.result(job_id) for job_id in ids]
            assert [r["status"] for r in records] == ["done"] * len(ids)
            # A pre-kill job's stream replays from the journal record.
            replay = [e["event"] for e in client2.stream(next(iter(done_before)))]
            assert replay[-1] == "done"
            client2.shutdown()
        finally:
            proc2.wait(timeout=15)
        self._assert_solved_once(probe_dir, len(ids))


# ---------------------------------------------------------------------------
class TestServeCLI:
    def test_serve_subcommand_registered(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["serve", "--port", "0",
                                          "--journal", "x.jsonl"])
        assert args.port == 0
        assert args.journal == "x.jsonl"
        assert args.workers == 1

    def test_module_parser_defaults(self):
        import argparse

        from repro.serve.__main__ import add_serve_arguments

        parser = argparse.ArgumentParser()
        add_serve_arguments(parser)
        args = parser.parse_args([])
        assert args.port == 8642
        assert args.batch_window == pytest.approx(0.01)
        assert args.throttle == 0.0
