"""Docstring coverage gate for the public API surface.

CI's lint job enforces ruff's pydocstyle D1 subset on
``src/repro/{protect,solvers,serve,dist}`` (see ``pyproject.toml``); this
test mirrors the same rules with ``ast`` so the gate also runs in
environments without ruff — and so a missing public docstring fails the
fast tier, not just lint.

Mirrored rules: D100/D104 (module and package docstrings), D101 (public
classes), D102 (public methods), D103 (public functions).  Names with a
leading underscore are private; magic methods and ``__init__`` are
covered by their class docstring (pyproject ignores D105/D107 the same
way).
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: The surfaces whose docstrings are API contract, per pyproject's
#: per-file-ignores: everything else in src/repro/ is exempt.
GATED = ("protect", "solvers", "serve", "dist")


def gated_modules():
    files = [SRC / "__init__.py"]
    for package in GATED:
        files.extend(sorted((SRC / package).glob("*.py")))
    return files


def _missing_in(tree: ast.Module, relpath: str) -> list:
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{relpath}: module docstring (D100/D104)")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            if ast.get_docstring(node) is None:
                missing.append(f"{relpath}: class {node.name} (D101)")
            for member in node.body:
                if (isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not member.name.startswith("_")
                        and ast.get_docstring(member) is None):
                    missing.append(
                        f"{relpath}: method {node.name}.{member.name} (D102)")
        elif (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not node.name.startswith("_")
                and ast.get_docstring(node) is None):
            missing.append(f"{relpath}: function {node.name} (D103)")
    return missing


def test_public_surface_is_documented():
    missing = []
    for path in gated_modules():
        relpath = str(path.relative_to(SRC.parent))
        tree = ast.parse(path.read_text())
        missing.extend(_missing_in(tree, relpath))
    assert not missing, (
        "public API without docstrings (ruff D1 will fail in CI too):\n  "
        + "\n  ".join(missing)
    )


def test_gate_covers_the_intended_packages():
    files = gated_modules()
    assert len(files) > 20, files  # the gate silently shrinking is a bug
    for package in GATED:
        assert any(f.parent.name == package for f in files)
