"""``python -m repro.faults.campaign``: arg parsing, JSONL, exit codes.

ISSUE 5 satellite: the campaign CLI's contract is pinned down — parsed
defaults, the ``--out`` JSONL round-trip through ``merge_jsonl``, and a
nonzero exit for a bad ``--kind``.
"""

import json

import pytest

from repro.errors import Outcome
from repro.faults import merge_jsonl
from repro.faults.campaign import build_parser, main


class TestArgParsing:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.kind == "matrix"
        assert args.trials == 200
        assert args.workers == 1
        assert args.shard_size == 50
        assert args.seed == 0
        assert args.out is None
        assert args.scheme == "secded64"
        assert args.rowptr_scheme is None
        assert args.region == "values"
        assert args.model == "single"
        assert args.recovery is None

    def test_every_kind_parses(self):
        for kind in ("matrix", "vector", "solver", "poisson"):
            assert build_parser().parse_args(["--kind", kind]).kind == kind

    def test_bad_kind_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--kind", "nope"])
        assert excinfo.value.code == 2

    def test_bad_kind_through_main_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--kind", "nope", "--trials", "4"])
        assert excinfo.value.code not in (0, None)

    def test_bad_region_and_recovery_exit_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--region", "nowhere"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--recovery", "pray"])
        assert excinfo.value.code == 2

    def test_bad_model_spec_exits_nonzero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--kind", "matrix", "--model", "gamma-ray", "--trials", "4"])
        assert excinfo.value.code not in (0, None)


class TestJsonlRoundTrip:
    def test_out_jsonl_round_trips_through_merge(self, tmp_path, capsys):
        out = tmp_path / "campaign.jsonl"
        rc = main([
            "--kind", "matrix", "--trials", "30", "--shard-size", "10",
            "--scheme", "sed", "--model", "double", "--out", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert str(out) in printed
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert [line["shard"] for line in sorted(lines, key=lambda r: r["shard"])] \
            == [0, 1, 2]
        assert sum(line["n_trials"] for line in lines) == 30
        merged = merge_jsonl(out)
        assert merged.n_trials == 30
        assert merged.scheme == "sed+sed"
        assert merged.info["shards"] == 3
        assert sum(merged.counts.values()) == 30
        # SED vs double flips: even flip counts are undetectable, so the
        # distribution must contain non-detected outcomes — evidence the
        # records carry real campaign counts, not placeholders.
        assert Outcome.DETECTED not in merged.counts

    def test_out_jsonl_matches_in_memory_result(self, tmp_path, capsys):
        out = tmp_path / "v.jsonl"
        rc = main([
            "--kind", "vector", "--trials", "16", "--shard-size", "8",
            "--scheme", "secded64", "--out", str(out), "--workers", "2",
        ])
        assert rc == 0
        merged = merge_jsonl(out)
        assert merged.n_trials == 16
        assert merged.region == "vector"
