"""ProtectedCSRElements tests across all four Fig.-1 schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.errors import ConfigurationError
from repro.protect import ProtectedCSRElements
from repro.protect.base import ELEMENT_SCHEMES

SCHEMES = list(ELEMENT_SCHEMES)


def make_protected(scheme, nx=6, ny=5, seed=0):
    rng = np.random.default_rng(seed)
    op = five_point_operator(nx, ny, rng.uniform(0.5, 2.0, (ny, nx)),
                             rng.uniform(0.5, 2.0, (ny, nx)), 0.3)
    prot = ProtectedCSRElements(
        op.values.copy(), op.colidx.copy(), op.rowptr, op.n_cols, scheme
    )
    return prot, op


def flip_value_bit(prot, element, bit):
    f64_to_u64(prot.values)[element] ^= np.uint64(1) << np.uint64(bit)


def flip_index_bit(prot, element, bit):
    prot.colidx[element] ^= np.uint32(1) << np.uint32(bit)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestPerScheme:
    def test_clean_after_encode(self, scheme):
        prot, _ = make_protected(scheme)
        assert not prot.detect().any()
        assert prot.check().clean

    def test_values_unchanged_by_encoding(self, scheme):
        """Redundancy lives in index bits only: full float precision kept."""
        prot, op = make_protected(scheme)
        assert np.array_equal(prot.values, op.values)

    def test_clean_indices_match_original(self, scheme):
        prot, op = make_protected(scheme)
        assert np.array_equal(prot.colidx_clean(), op.colidx)

    def test_value_bit_flip_detected(self, scheme):
        prot, _ = make_protected(scheme)
        flip_value_bit(prot, 7, 40)
        assert prot.detect().any()

    def test_index_data_bit_flip_detected(self, scheme):
        prot, _ = make_protected(scheme)
        flip_index_bit(prot, 7, 3)
        assert prot.detect().any()

    def test_redundancy_bit_flip_detected(self, scheme):
        """Flips in the embedded ECC bits themselves are also caught."""
        prot, _ = make_protected(scheme)
        bit = 31 if scheme == "sed" else 28
        flip_index_bit(prot, 2, bit)
        assert prot.detect().any()

    def test_detect_does_not_modify(self, scheme):
        prot, _ = make_protected(scheme)
        flip_value_bit(prot, 3, 10)
        vals = prot.values.copy()
        idxs = prot.colidx.copy()
        prot.detect()
        assert np.array_equal(prot.values, vals)
        assert np.array_equal(prot.colidx, idxs)


@pytest.mark.parametrize("scheme", ["secded64", "secded128", "crc32c"])
class TestCorrection:
    def test_value_flip_corrected(self, scheme):
        prot, op = make_protected(scheme)
        vals0, idxs0 = prot.values.copy(), prot.colidx.copy()
        flip_value_bit(prot, 11, 52)
        report = prot.check()
        assert report.n_corrected == 1
        assert report.n_uncorrectable == 0
        assert np.array_equal(prot.values, vals0)
        assert np.array_equal(prot.colidx, idxs0)

    def test_index_flip_corrected(self, scheme):
        prot, _ = make_protected(scheme)
        vals0, idxs0 = prot.values.copy(), prot.colidx.copy()
        flip_index_bit(prot, 23, 5)
        report = prot.check()
        assert report.n_corrected == 1
        assert np.array_equal(prot.values, vals0)
        assert np.array_equal(prot.colidx, idxs0)

    def test_many_separate_codewords_corrected(self, scheme):
        prot, _ = make_protected(scheme, nx=8, ny=8)
        vals0, idxs0 = prot.values.copy(), prot.colidx.copy()
        # One flip per row -> always distinct codewords for every scheme.
        for row, bit in [(0, 1), (10, 33), (20, 60), (40, 17)]:
            flip_value_bit(prot, 5 * row + 2, bit)
        report = prot.check()
        assert report.n_corrected == 4
        assert np.array_equal(prot.values, vals0)
        assert np.array_equal(prot.colidx, idxs0)


class TestSED:
    def test_sed_detects_but_cannot_correct(self):
        prot, _ = make_protected("sed")
        flip_value_bit(prot, 0, 0)
        report = prot.check()
        assert report.n_uncorrectable == 1
        assert report.n_corrected == 0

    def test_sed_misses_double_flip(self):
        prot, _ = make_protected("sed")
        flip_value_bit(prot, 0, 10)
        flip_index_bit(prot, 0, 3)
        assert not prot.detect().any()

    def test_sed_parity_spans_value_and_index(self):
        """The 96-bit codeword couples value and index bits."""
        prot, _ = make_protected("sed")
        flip_index_bit(prot, 4, 14)
        flags = prot.detect()
        assert flags[4] and flags.sum() == 1


class TestSECDED128Pairing:
    def test_codeword_count_pairs(self):
        prot, op = make_protected("secded128")
        assert prot.n_codewords == (op.nnz + 1) // 2

    def test_pair_partner_flip_localised(self):
        prot, _ = make_protected("secded128")
        flip_value_bit(prot, 1, 9)  # second element of pair 0
        flags = prot.detect()
        assert flags[0] and flags.sum() == 1

    def test_double_flip_across_pair_detected(self):
        prot, _ = make_protected("secded128")
        flip_value_bit(prot, 0, 7)
        flip_value_bit(prot, 1, 9)
        report = prot.check()
        assert report.n_uncorrectable == 1

    def test_odd_tail_element_protected(self):
        # 5-point operator has 5 nnz/row; 5*odd rows -> odd nnz.
        prot, op = make_protected("secded128", nx=3, ny=3)
        assert op.nnz % 2 == 1
        vals0 = prot.values.copy()
        flip_value_bit(prot, op.nnz - 1, 30)
        report = prot.check()
        assert report.n_corrected == 1
        assert np.array_equal(prot.values, vals0)


class TestCRC32C:
    def test_codeword_per_row(self):
        prot, op = make_protected("crc32c")
        assert prot.n_codewords == op.n_rows

    def test_two_flips_in_row_corrected(self):
        prot, _ = make_protected("crc32c")
        vals0, idxs0 = prot.values.copy(), prot.colidx.copy()
        flip_value_bit(prot, 10, 20)  # row 2
        flip_index_bit(prot, 12, 8)   # row 2 as well
        report = prot.check()
        assert report.n_corrected == 1
        assert np.array_equal(prot.values, vals0)
        assert np.array_equal(prot.colidx, idxs0)

    def test_five_flips_detected(self):
        """HD=6: up to 5 flips in a row codeword are never silent."""
        rng = np.random.default_rng(12)
        for trial in range(10):
            prot, _ = make_protected("crc32c", seed=trial)
            for _ in range(5):
                flip_value_bit(prot, int(rng.integers(5, 10)), int(rng.integers(0, 64)))
            assert prot.detect().any()

    def test_checksum_byte_flip_corrected(self):
        prot, _ = make_protected("crc32c")
        idxs0 = prot.colidx.copy()
        flip_index_bit(prot, 5, 26)  # top byte of row 1's first element
        report = prot.check()
        assert report.n_corrected == 1
        assert np.array_equal(prot.colidx, idxs0)

    def test_rejects_rows_shorter_than_four(self):
        values = np.ones(3)
        colidx = np.array([0, 1, 2], np.uint32)
        rowptr = np.array([0, 3], np.uint32)
        with pytest.raises(ConfigurationError):
            ProtectedCSRElements(values, colidx, rowptr, 3, "crc32c")

    def test_ragged_rows_grouped_by_length(self):
        """Rows of different lengths each get a correct CRC."""
        rng = np.random.default_rng(13)
        lengths = [4, 6, 4, 5, 7, 4]
        rowptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.uint32)
        nnz = int(rowptr[-1])
        values = rng.standard_normal(nnz)
        colidx = rng.integers(0, 100, nnz).astype(np.uint32)
        prot = ProtectedCSRElements(values, colidx, rowptr, 100, "crc32c")
        assert not prot.detect().any()
        flip_value_bit(prot, int(rowptr[4]) + 2, 17)  # inside the 7-long row
        flags = prot.detect()
        assert flags[4] and flags.sum() == 1
        assert prot.check().n_corrected == 1


class TestLimits:
    def test_sed_column_limit(self):
        values = np.ones(1)
        colidx = np.array([2**31 - 1], np.uint32)
        rowptr = np.array([0, 1], np.uint32)
        with pytest.raises(ConfigurationError):
            ProtectedCSRElements(values, colidx, rowptr, 2**31, "sed")

    def test_secded_column_limit(self):
        values = np.ones(1)
        colidx = np.array([2**24], np.uint32)
        rowptr = np.array([0, 1], np.uint32)
        with pytest.raises(ConfigurationError):
            ProtectedCSRElements(values, colidx, rowptr, 2**24 + 1, "secded64")

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            ProtectedCSRElements(np.ones(1), np.zeros(1, np.uint32),
                                 np.array([0, 1], np.uint32), 1, "parity3")


@given(
    st.sampled_from(SCHEMES),
    st.integers(0, 149),
    st.integers(0, 95),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=80, deadline=None)
def test_any_single_flip_never_silent(scheme, element, bit, seed):
    """Property: a single flip in any stored element bit is never an SDC."""
    prot, _ = make_protected(scheme, nx=6, ny=5, seed=seed % 100)
    if bit < 64:
        flip_value_bit(prot, element, bit)
    else:
        flip_index_bit(prot, element, bit - 64)
    assert prot.detect().any()
