"""CRC32C tests: reference vectors, implementation agreement, correction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.crc32c import (
    crc32c,
    crc32c_batch,
    crc32c_bitwise,
    crc32c_slicing16,
    crc32c_table,
)
from repro.ecc.crc_correct import CRCCorrector, corrector_for

# Published CRC32C test vectors (RFC 3720 / Intel SSE4.2 semantics).
KNOWN_VECTORS = [
    (b"", 0x00000000),
    (b"a", 0xC1D04330),
    (b"123456789", 0xE3069283),
    (b"The quick brown fox jumps over the lazy dog", 0x22620404),
    (bytes(32), 0x8A9136AA),
    (bytes([0xFF] * 32), 0x62A8AB43),
]


class TestKnownVectors:
    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_bitwise(self, data, expected):
        assert crc32c_bitwise(data) == expected

    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_table(self, data, expected):
        assert crc32c_table(data) == expected

    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_slicing16(self, data, expected):
        assert crc32c_slicing16(data) == expected

    @pytest.mark.parametrize("data,expected", KNOWN_VECTORS)
    def test_batch(self, data, expected):
        if not data:
            pytest.skip("batch kernel needs at least one byte column")
        m = np.frombuffer(data, dtype=np.uint8).reshape(1, -1)
        assert crc32c_batch(m)[0] == expected


@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=80, deadline=None)
def test_implementations_agree(data):
    ref = crc32c_bitwise(data)
    assert crc32c_table(data) == ref
    assert crc32c_slicing16(data) == ref


@given(st.binary(min_size=1, max_size=80), st.integers(1, 7))
@settings(max_examples=40, deadline=None)
def test_batch_matches_scalar_across_rows(row, n_rows):
    m = np.tile(np.frombuffer(row, dtype=np.uint8), (n_rows, 1))
    # Make rows distinct to exercise independent lanes.
    m[:, 0] = (m[:, 0].astype(np.uint16) + np.arange(n_rows)) % 256
    got = crc32c_batch(m)
    expected = [crc32c_slicing16(m[i].tobytes()) for i in range(n_rows)]
    assert np.array_equal(got, expected)


class TestBatchKernel:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            crc32c_batch(np.zeros(8, dtype=np.uint8))

    def test_large_batch_smoke(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 256, (4096, 60)).astype(np.uint8)
        crcs = crc32c_batch(m)
        # Spot-check a few rows against the scalar path.
        for i in (0, 17, 4095):
            assert crcs[i] == crc32c(m[i].tobytes())


class TestBurstAndOddDetection:
    """The (x+1) factor: all odd-weight and <=32-bit-burst errors detected."""

    def test_odd_weight_errors_always_detected(self):
        rng = np.random.default_rng(1)
        data = bytearray(rng.integers(0, 256, 60).astype(np.uint8).tobytes())
        ref = crc32c(bytes(data))
        for weight in (1, 3, 5, 7, 9):
            for _ in range(20):
                corrupted = bytearray(data)
                for bit in rng.choice(60 * 8, size=weight, replace=False):
                    corrupted[bit // 8] ^= 1 << (bit % 8)
                assert crc32c(bytes(corrupted)) != ref

    def test_bursts_up_to_32_bits_detected(self):
        rng = np.random.default_rng(2)
        data = bytearray(rng.integers(0, 256, 60).astype(np.uint8).tobytes())
        ref = crc32c(bytes(data))
        for burst_len in (2, 8, 17, 32):
            for _ in range(20):
                start = int(rng.integers(0, 60 * 8 - burst_len))
                pattern = rng.integers(1, 2**burst_len)
                # Force both endpoints set so the burst really spans burst_len.
                pattern |= 1 | (1 << (burst_len - 1))
                corrupted = bytearray(data)
                for k in range(burst_len):
                    if (int(pattern) >> k) & 1:
                        bit = start + k
                        corrupted[bit // 8] ^= 1 << (bit % 8)
                assert crc32c(bytes(corrupted)) != ref


class TestCorrector:
    def test_single_bit_location_exhaustive(self):
        """Every data and checksum bit of a 60-byte codeword localises."""
        n_bytes = 60  # a 5-element CSR row: 5 * (8 + 4) bytes
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, n_bytes).astype(np.uint8).tobytes()
        stored = crc32c(data)
        corr = CRCCorrector(n_bytes)
        for bit in range(n_bytes * 8):
            corrupted = bytearray(data)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            diff = crc32c(bytes(corrupted)) ^ stored
            assert corr.locate_single(diff) == bit
        for j in range(32):
            diff = 1 << j  # flip in the stored checksum itself
            assert corr.locate_single(diff) == n_bytes * 8 + j

    def test_double_bit_location(self):
        n_bytes = 60
        rng = np.random.default_rng(4)
        data = rng.integers(0, 256, n_bytes).astype(np.uint8).tobytes()
        stored = crc32c(data)
        corr = CRCCorrector(n_bytes)
        assert corr.hd6
        for _ in range(40):
            a, b = sorted(rng.choice(n_bytes * 8, size=2, replace=False))
            corrupted = bytearray(data)
            corrupted[a // 8] ^= 1 << (a % 8)
            corrupted[b // 8] ^= 1 << (b % 8)
            diff = crc32c(bytes(corrupted)) ^ stored
            assert corr.locate_single(diff) is None  # not aliased to 1 bit
            assert corr.locate_double(diff) == (int(a), int(b))

    def test_locate_cascade(self):
        corr = corrector_for(60)
        sig_a = corr.signature(10)
        sig_b = corr.signature(100)
        assert corr.locate(sig_a) == (10,)
        assert corr.locate(sig_a ^ sig_b) == (10, 100)
        assert corr.locate(sig_a ^ sig_b, max_errors=1) is None

    def test_zero_diff_means_clean(self):
        corr = corrector_for(60)
        assert corr.locate_single(0) is None
        assert corr.locate_double(0) is None

    def test_hd6_window(self):
        assert CRCCorrector(60).hd6          # 512 bits
        assert CRCCorrector(19).hd6          # 184 bits
        assert not CRCCorrector(18).hd6      # 176 bits < 178
        assert not CRCCorrector(1000).hd6    # way beyond 5243

    def test_corrector_cache_returns_same_object(self):
        assert corrector_for(44) is corrector_for(44)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            CRCCorrector(0)
