"""Edge cases and cross-cutting invariants not covered elsewhere."""

import numpy as np
import pytest

from repro.csr import csr_from_dense, five_point_operator
from repro.ecc.base import CheckReport, CodewordStatus
from repro.protect import (
    ProtectedCSRMatrix,
    ProtectedVector,
)
from repro.solvers.base import LinearOperator, SolverResult
from repro.tealeaf.reference import fourier_mode, mode_eigenvalue


class TestCheckReport:
    def test_merge_takes_worst_status(self):
        a = CheckReport(status=np.array([0, 1, 0], dtype=np.uint8))
        b = CheckReport(status=np.array([0, 0, 2], dtype=np.uint8))
        merged = a.merge(b)
        assert list(merged.status) == [0, 1, 2]
        assert merged.n_corrected == 1
        assert merged.n_uncorrectable == 1

    def test_indices_accessors(self):
        report = CheckReport(
            status=np.array(
                [CodewordStatus.OK, CodewordStatus.CORRECTED,
                 CodewordStatus.UNCORRECTABLE], dtype=np.uint8,
            )
        )
        assert list(report.corrected_indices()) == [1]
        assert list(report.uncorrectable_indices()) == [2]
        assert not report.clean
        assert not report.ok


class TestSolverPlumbing:
    def test_final_residual_nan_when_empty(self):
        res = SolverResult(x=np.zeros(2), iterations=0, converged=False)
        assert np.isnan(res.final_residual)

    def test_operator_without_diagonal_raises(self):
        op = LinearOperator(lambda x: x, 4)
        with pytest.raises(NotImplementedError):
            op.diagonal()

    def test_operator_diagonal_plain_array(self):
        op = LinearOperator(lambda x: x, 2, diagonal=np.array([1.0, 2.0]))
        assert np.array_equal(op.diagonal(), [1.0, 2.0])


class TestFullyUnprotectedMatrix:
    def test_both_regions_none_is_passthrough(self):
        A = five_point_operator(4, 4, np.ones((4, 4)), np.ones((4, 4)), 0.2)
        pmat = ProtectedCSRMatrix(A, None, None)
        x = np.random.default_rng(0).standard_normal(16)
        assert np.array_equal(pmat.matvec_unchecked(x), A.matvec(x))
        assert not pmat.detect_any()
        reports = pmat.check_all()
        assert all(r.clean for r in reports.values())
        pmat.bounds_check()  # raw structures are valid


class TestVectorEdgeCases:
    def test_all_tail_vector(self):
        """Shorter than one group: everything is SED-tail protected."""
        vec = ProtectedVector(np.array([1.5, -2.5, 3.5]), "crc32c")
        assert vec.tail_size == 3
        assert vec.n_codewords == 3
        assert not vec.detect().any()
        np.copyto(vec.raw, vec.raw)  # touching raw does not corrupt
        assert not vec.detect().any()

    def test_empty_vector(self):
        vec = ProtectedVector(np.zeros(0), "secded64")
        assert len(vec) == 0
        assert not vec.detect().any()
        assert vec.check().clean

    def test_noise_does_not_accumulate_over_store_cycles(self):
        """store(values()) is idempotent: repeated cycles stay put."""
        rng = np.random.default_rng(1)
        vec = ProtectedVector(rng.standard_normal(64), "crc32c")
        first = vec.values()
        for _ in range(20):
            vec.store(vec.values())
        assert np.array_equal(vec.values(), first)

    def test_special_float_values_protected(self):
        special = np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 1e-308, 1e308])
        vec = ProtectedVector(special, "secded64")
        assert not vec.detect().any()
        out = vec.values()
        assert np.isnan(out[4])
        assert np.isinf(out[2]) and out[2] > 0
        # NaN payload bits are data like any other: flips are corrected.
        from repro.bits.float_bits import f64_to_u64

        f64_to_u64(vec.raw)[4] ^= np.uint64(1) << np.uint64(30)
        assert vec.check().n_corrected == 1


class TestReferenceOracles:
    def test_fourier_modes_orthogonal(self):
        nx = ny = 16
        m1 = fourier_mode(nx, ny, 1, 2).ravel()
        m2 = fourier_mode(nx, ny, 3, 1).ravel()
        assert abs(np.dot(m1, m2)) < 1e-10

    def test_mode_zero_is_constant(self):
        mode = fourier_mode(8, 8, 0, 0)
        assert np.allclose(mode, 1.0)
        assert mode_eigenvalue(8, 8, 0, 0, 1.0) == 0.0

    def test_eigenvalue_increases_with_frequency(self):
        lams = [mode_eigenvalue(32, 32, k, 0, 1.0) for k in range(5)]
        assert all(a < b for a, b in zip(lams, lams[1:]))


class TestDiagonalDuplicates:
    def test_diagonal_with_explicit_duplicates(self):
        # Boundary rows of the 5-point operator store clamped duplicates.
        A = five_point_operator(3, 3, np.ones((3, 3)), np.ones((3, 3)), 0.5)
        dense = A.to_dense()
        assert np.allclose(A.diagonal(), np.diag(dense))

    def test_diagonal_simple(self):
        A = csr_from_dense(np.array([[2.0, 1.0], [0.0, 3.0]]))
        assert np.array_equal(A.diagonal(), [2.0, 3.0])
