"""Engine-threaded protected Jacobi and Chebyshev (ISSUE 2 satellite).

These two solvers used to fall back to the eager ProtectedOperator with
no vector protection at all; now they run through the same
ProtectedIteration toolkit as CG/PPCG.  Contract: solutions match the
plain counterparts on the TeaLeaf-like matrix, injected single-bit flips
are detected/corrected per scheme, and the policy counters land in
``result.info`` exactly like CG's.
"""

import numpy as np
import pytest

from repro.bits.float_bits import f64_to_u64
from repro.errors import DetectedUncorrectableError
from repro.harness.overhead import tealeaf_like_matrix
from repro.protect import CheckPolicy, ProtectedCSRMatrix
from repro.solvers import (
    chebyshev_solve,
    estimate_eigenvalue_bounds,
    jacobi_solve,
    protected_chebyshev_run,
    protected_jacobi_run,
)

CG_INFO_KEYS = {
    "full_checks", "bounds_checks", "vector_checks", "cached_reads",
    "deferred_stores", "dirty_flushes", "corrected", "vector_scheme",
}


@pytest.fixture(scope="module")
def system():
    matrix = tealeaf_like_matrix(8, seed=11)  # 64 unknowns, TeaLeaf layout
    rng = np.random.default_rng(12)
    x_true = rng.standard_normal(matrix.n_cols)
    return matrix, matrix.matvec(x_true), x_true


class TestProtectedJacobi:
    def test_matches_plain_jacobi(self, system):
        matrix, b, x_true = system
        plain = jacobi_solve(matrix, b, eps=1e-24, max_iters=20_000)
        prot = protected_jacobi_run(
            ProtectedCSRMatrix(matrix, "secded64", "secded64"),
            b, eps=1e-24, max_iters=20_000, vector_scheme="secded64",
        )
        assert prot.converged
        assert np.allclose(prot.x, x_true, atol=1e-8)
        assert prot.iterations == plain.iterations
        assert len(prot.residual_norms) == len(plain.residual_norms)

    @pytest.mark.parametrize("interval", [8, 32])
    def test_deferred_schedule(self, system, interval):
        matrix, b, x_true = system
        res = protected_jacobi_run(
            ProtectedCSRMatrix(matrix, "secded64", "secded64"),
            b, eps=1e-24, max_iters=20_000,
            policy=CheckPolicy(interval=interval, correct=False),
            vector_scheme="secded64",
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)
        assert res.info["deferred_stores"] > 0
        assert res.info["bounds_checks"] > res.info["full_checks"]

    def test_counters_land_in_info_like_cg(self, system):
        matrix, b, _ = system
        res = protected_jacobi_run(
            ProtectedCSRMatrix(matrix, "secded64", "secded64"),
            b, eps=1e-18, max_iters=20_000, vector_scheme="secded64",
        )
        assert CG_INFO_KEYS <= set(res.info)
        assert res.info["full_checks"] > 0
        assert res.info["vector_checks"] > 0
        assert res.info["cached_reads"] > 0

    def test_matrix_only_protection(self, system):
        matrix, b, x_true = system
        res = protected_jacobi_run(
            ProtectedCSRMatrix(matrix, "crc32c", "crc32c"),
            b, eps=1e-24, max_iters=20_000, vector_scheme=None,
        )
        assert np.allclose(res.x, x_true, atol=1e-8)
        assert res.info["vector_checks"] == 0

    def test_secded_flip_corrected_mid_solve(self, system):
        matrix, b, x_true = system
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        f64_to_u64(pmat.values)[17] ^= np.uint64(1) << np.uint64(33)
        res = protected_jacobi_run(
            pmat, b, eps=1e-24, max_iters=20_000, vector_scheme="secded64",
        )
        assert res.info["corrected"] >= 1
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_sed_flip_detected_not_silent(self, system):
        matrix, b, _ = system
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        f64_to_u64(pmat.values)[5] ^= np.uint64(1) << np.uint64(21)
        with pytest.raises(DetectedUncorrectableError):
            protected_jacobi_run(
                pmat, b, eps=1e-24, max_iters=20_000, vector_scheme=None,
            )

    def test_sed_flip_detected_under_deferral(self, system):
        """A flip present before a deferred solve surfaces no later than
        the end-of-step sweep."""
        matrix, b, _ = system
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        pmat.colidx[3] ^= np.uint32(1) << np.uint32(2)
        with pytest.raises(DetectedUncorrectableError):
            protected_jacobi_run(
                pmat, b, eps=1e-24, max_iters=20_000,
                policy=CheckPolicy(interval=16, correct=False),
                vector_scheme="secded64",
            )


class TestProtectedChebyshev:
    def test_matches_plain_chebyshev(self, system):
        matrix, b, x_true = system
        lo, hi = estimate_eigenvalue_bounds(matrix)
        plain = chebyshev_solve(matrix, b, eig_min=lo, eig_max=hi,
                                eps=1e-24, max_iters=20_000)
        prot = protected_chebyshev_run(
            ProtectedCSRMatrix(matrix, "secded64", "secded64"),
            b, eig_min=lo, eig_max=hi, eps=1e-24, max_iters=20_000,
            vector_scheme="secded64",
        )
        assert prot.converged
        assert np.allclose(prot.x, x_true, atol=1e-8)
        assert abs(prot.iterations - plain.iterations) <= 1

    def test_bounds_estimated_when_missing(self, system):
        matrix, b, x_true = system
        res = protected_chebyshev_run(
            ProtectedCSRMatrix(matrix, "secded64", "secded64"),
            b, eps=1e-24, max_iters=20_000, vector_scheme="secded64",
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)
        assert 0 < res.info["eig_min"] < res.info["eig_max"]

    def test_rejects_bad_bounds(self, system):
        matrix, b, _ = system
        with pytest.raises(ValueError):
            protected_chebyshev_run(
                ProtectedCSRMatrix(matrix, "secded64", "secded64"),
                b, eig_min=2.0, eig_max=1.0,
            )

    @pytest.mark.parametrize("interval", [8, 32])
    def test_deferred_schedule(self, system, interval):
        matrix, b, x_true = system
        res = protected_chebyshev_run(
            ProtectedCSRMatrix(matrix, "secded64", "secded64"),
            b, eps=1e-24, max_iters=20_000,
            policy=CheckPolicy(interval=interval, correct=False),
            vector_scheme="secded64",
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)
        assert res.info["deferred_stores"] > 0
        assert res.info["bounds_checks"] > res.info["full_checks"]

    def test_counters_land_in_info_like_cg(self, system):
        matrix, b, _ = system
        res = protected_chebyshev_run(
            ProtectedCSRMatrix(matrix, "secded64", "secded64"),
            b, eps=1e-18, max_iters=20_000, vector_scheme="secded64",
        )
        assert CG_INFO_KEYS <= set(res.info)
        assert res.info["full_checks"] > 0
        assert res.info["vector_checks"] > 0

    def test_secded_flip_corrected_mid_solve(self, system):
        matrix, b, x_true = system
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        f64_to_u64(pmat.values)[40] ^= np.uint64(1) << np.uint64(28)
        res = protected_chebyshev_run(
            pmat, b, eps=1e-24, max_iters=20_000, vector_scheme="secded64",
        )
        assert res.info["corrected"] >= 1
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_sed_flip_detected_not_silent(self, system):
        matrix, b, _ = system
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        f64_to_u64(pmat.values)[9] ^= np.uint64(1) << np.uint64(44)
        with pytest.raises(DetectedUncorrectableError):
            protected_chebyshev_run(
                pmat, b, eps=1e-24, max_iters=20_000, vector_scheme=None,
            )


class TestCachedDiagonal:
    def test_diagonal_matches_decoded(self, system):
        matrix, _, _ = system
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        assert np.allclose(pmat.diagonal(), matrix.diagonal())

    def test_diagonal_cached_between_checks(self, system):
        matrix, _, _ = system
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        first = pmat.diagonal()
        assert pmat.diagonal() is first  # no re-decode
        pmat.check_all()
        # A clean check changes no storage, so the cache survives it...
        assert pmat.diagonal() is first
        f64_to_u64(pmat.values)[0] ^= np.uint64(1) << np.uint64(50)
        pmat.check_all(correct=True)
        # ...while a correcting check invalidates it with the clean views.
        assert pmat.diagonal() is not first

    def test_operator_diagonal_no_longer_decodes_whole_matrix(self, system):
        """The ProtectedOperator diagonal callback rides the matrix cache
        (and sees corrections applied by a later check)."""
        from repro.protect.operator import ProtectedOperator

        matrix, _, _ = system
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        op = ProtectedOperator(pmat)
        d1 = op.diagonal()
        assert d1 is pmat.diagonal()  # shared cache, not a fresh to_csr()
        # Flip a diagonal-relevant value bit; a correcting check must
        # refresh what the operator hands out.
        f64_to_u64(pmat.values)[0] ^= np.uint64(1) << np.uint64(50)
        pmat.check_all(correct=True)
        assert np.allclose(op.diagonal(), matrix.diagonal())
