"""Fault-injection machinery tests + empirical guarantee validation."""

import numpy as np
import pytest

from repro.csr import five_point_operator
from repro.errors import Outcome
from repro.faults import (
    BurstError,
    MultiBitFlip,
    Region,
    SingleBitFlip,
    StuckBits,
    flip_array_bit,
    run_matrix_campaign,
    run_solver_campaign,
    run_vector_campaign,
)


def small_matrix(seed=0):
    rng = np.random.default_rng(seed)
    return five_point_operator(
        8, 8, rng.uniform(0.5, 2.0, (8, 8)), rng.uniform(0.5, 2.0, (8, 8)), 0.3
    )


class TestModels:
    def test_single_bit(self):
        rng = np.random.default_rng(0)
        faults = SingleBitFlip().sample(rng, 100, 64)
        assert len(faults) == 1
        assert 0 <= faults[0].element < 100
        assert 0 <= faults[0].bit < 64

    def test_multi_bit_distinct_positions(self):
        rng = np.random.default_rng(1)
        faults = MultiBitFlip(k=5).sample(rng, 10, 32)
        positions = {(f.element, f.bit) for f in faults}
        assert len(positions) == 5

    def test_multi_bit_local_spread(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            faults = MultiBitFlip(k=3, spread=1).sample(rng, 50, 64)
            elements = sorted(f.element for f in faults)
            assert elements[-1] - elements[0] <= 1

    def test_burst_endpoints_flipped(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            faults = BurstError(length=16).sample(rng, 10, 64)
            flat = sorted(f.element * 64 + f.bit for f in faults)
            assert flat[-1] - flat[0] == 15

    def test_stuck_bits_have_polarity(self):
        rng = np.random.default_rng(4)
        faults = StuckBits(k=3, polarity=0).sample(rng, 10, 64)
        assert all(f.stuck == 0 for f in faults)


class TestInjector:
    def test_flip_float_array(self):
        x = np.array([1.0, 2.0])
        assert flip_array_bit(x, 0, 52)  # exponent bit -> big change
        assert x[0] != 1.0

    def test_flip_uint32_array(self):
        x = np.array([0, 0], dtype=np.uint32)
        assert flip_array_bit(x, 1, 5)
        assert x[1] == 32

    def test_stuck_noop_reported(self):
        x = np.array([0xFF], dtype=np.uint32)
        assert not flip_array_bit(x, 0, 3, stuck=1)  # already set
        assert flip_array_bit(x, 0, 3, stuck=0)

    def test_rejects_weird_dtype(self):
        with pytest.raises(TypeError):
            flip_array_bit(np.zeros(2, dtype=np.int16), 0, 0)


class TestMatrixCampaigns:
    def test_secded_single_bit_all_corrected(self):
        result = run_matrix_campaign(
            small_matrix(), "secded64", "secded64",
            Region.VALUES, SingleBitFlip(), n_trials=150,
        )
        assert result.counts.get(Outcome.CORRECTED, 0) == 150
        assert result.sdc_rate == 0.0

    def test_sed_single_bit_all_detected_never_corrected(self):
        result = run_matrix_campaign(
            small_matrix(), "sed", "sed",
            Region.VALUES, SingleBitFlip(), n_trials=150,
        )
        assert result.counts.get(Outcome.DETECTED, 0) == 150
        assert result.detection_rate == 1.0

    def test_secded_double_bit_never_silent(self):
        result = run_matrix_campaign(
            small_matrix(), "secded64", "secded64",
            Region.COLIDX, MultiBitFlip(k=2, spread=0), n_trials=150,
        )
        assert result.sdc_rate == 0.0

    def test_sed_double_bit_mostly_silent(self):
        """SED's documented hole: even flip counts pass the parity check."""
        result = run_matrix_campaign(
            small_matrix(), "sed", "sed",
            Region.VALUES, MultiBitFlip(k=2, spread=0), n_trials=150,
        )
        # Flips in the same 96-bit codeword are invisible; cross-codeword
        # pairs are caught. spread=0 keeps both in one element's value.
        assert result.counts.get(Outcome.SILENT, 0) == 150

    def test_crc_row_campaign_corrects_pairs(self):
        result = run_matrix_campaign(
            small_matrix(), "crc32c", "crc32c",
            Region.VALUES, MultiBitFlip(k=2, spread=0), n_trials=100,
        )
        assert result.counts.get(Outcome.CORRECTED, 0) == 100

    def test_crc_five_flips_never_silent(self):
        """HD=6 guarantee for the 512-bit row codewords."""
        result = run_matrix_campaign(
            small_matrix(), "crc32c", "crc32c",
            Region.VALUES, MultiBitFlip(k=5, spread=0), n_trials=150,
        )
        assert result.sdc_rate == 0.0

    def test_rowptr_campaign(self):
        # 7x9 grid -> 63 rows -> 64 row-pointer entries: no SED tail, so
        # every single flip is correctable.
        rng = np.random.default_rng(9)
        matrix = five_point_operator(
            7, 9, rng.uniform(0.5, 2.0, (9, 7)), rng.uniform(0.5, 2.0, (9, 7)), 0.3
        )
        result = run_matrix_campaign(
            matrix, "secded64", "secded64",
            Region.ROWPTR, SingleBitFlip(), n_trials=100,
        )
        assert result.counts.get(Outcome.CORRECTED, 0) == 100

    def test_rowptr_campaign_with_tail_detects(self):
        # 8x8 grid -> 65 entries: flips in the SED tail entry are
        # detected but not corrected (documented fallback).
        result = run_matrix_campaign(
            small_matrix(), "secded64", "secded64",
            Region.ROWPTR, SingleBitFlip(), n_trials=100,
        )
        corrected = result.counts.get(Outcome.CORRECTED, 0)
        detected = result.counts.get(Outcome.DETECTED, 0)
        assert corrected + detected == 100
        assert result.sdc_rate == 0.0

    def test_burst_detection_crc(self):
        """Bursts <= 32 bits within a row are always caught by CRC32C."""
        result = run_matrix_campaign(
            small_matrix(), "crc32c", "sed",
            Region.VALUES, BurstError(length=32), n_trials=100,
        )
        assert result.sdc_rate == 0.0

    def test_stuck_bits_can_be_noops(self):
        result = run_matrix_campaign(
            small_matrix(), "secded64", "secded64",
            Region.COLIDX, StuckBits(k=1, polarity=0), n_trials=100,
        )
        # Sticking a zero bit to 0 changes nothing -> CLEAN outcomes exist.
        assert result.counts.get(Outcome.CLEAN, 0) > 0
        assert result.sdc_rate == 0.0

    def test_detection_only_mode(self):
        result = run_matrix_campaign(
            small_matrix(), "secded64", "secded64",
            Region.VALUES, SingleBitFlip(), n_trials=50, correct=False,
        )
        assert result.counts.get(Outcome.DETECTED, 0) == 50


class TestVectorCampaigns:
    @pytest.mark.parametrize("scheme,expected", [
        ("sed", Outcome.DETECTED),
        ("secded64", Outcome.CORRECTED),
        ("secded128", Outcome.CORRECTED),
        ("crc32c", Outcome.CORRECTED),
    ])
    def test_single_bit_outcomes(self, scheme, expected):
        rng = np.random.default_rng(5)
        result = run_vector_campaign(
            rng.standard_normal(64), scheme, SingleBitFlip(), n_trials=150
        )
        assert result.counts.get(expected, 0) == 150

    def test_secded_triple_flip_sdc_possible(self):
        """3 flips exceed SECDED's guarantee: miscorrections may occur."""
        rng = np.random.default_rng(6)
        result = run_vector_campaign(
            rng.standard_normal(64), "secded64",
            MultiBitFlip(k=3, spread=0), n_trials=200,
        )
        # Not asserting an exact rate - just that the failure mode is
        # observed and correctly *classified* as MISCORRECTED, not CLEAN.
        assert result.counts.get(Outcome.MISCORRECTED, 0) > 0
        assert result.counts.get(Outcome.CLEAN, 0) == 0


class TestSolverCampaign:
    def test_secded_solver_campaign_transparent(self):
        A = small_matrix()
        b = np.random.default_rng(7).standard_normal(A.n_rows)
        result = run_solver_campaign(A, b, "secded64", "secded64", n_trials=25)
        assert result.counts.get(Outcome.CORRECTED, 0) == 25
        assert result.sdc_rate == 0.0

    def test_sed_solver_campaign_detects_and_recovers(self):
        A = small_matrix()
        b = np.random.default_rng(8).standard_normal(A.n_rows)
        result = run_solver_campaign(A, b, "sed", "sed", n_trials=25)
        assert result.counts.get(Outcome.DETECTED, 0) == 25
        assert result.info["recovered"] == 25  # re-solve always succeeds

    def test_result_row_format(self):
        A = small_matrix()
        b = np.ones(A.n_rows)
        result = run_solver_campaign(A, b, n_trials=5)
        line = result.row()
        assert "SDC-rate" in line and "secded64" in line

    @pytest.mark.parametrize("method", ["jacobi", "chebyshev", "ppcg"])
    def test_method_parametric_campaign(self, method):
        """The campaign runs any registry method, not just CG."""
        A = small_matrix()
        b = np.random.default_rng(9).standard_normal(A.n_rows)
        result = run_solver_campaign(
            A, b, "secded64", "secded64", n_trials=6, method=method, eps=1e-16,
        )
        assert result.info["method"] == method
        assert result.counts.get(Outcome.CORRECTED, 0) == 6
        assert result.sdc_rate == 0.0
