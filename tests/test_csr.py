"""CSR substrate tests, using scipy.sparse as the oracle."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csr import (
    CSRMatrix,
    csr_from_coo,
    csr_from_dense,
    csr_from_scipy,
    five_point_operator,
    row_dot,
    spmv,
    spmv_fixed_width,
)


def random_csr(rng, m=20, n=16, density=0.2):
    mat = sp.random(m, n, density=density, random_state=rng, format="csr")
    mat.sort_indices()
    return csr_from_scipy(mat), mat


class TestConstruction:
    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((7, 9))
        dense[dense < 0.4] = 0.0
        mat = csr_from_dense(dense)
        assert np.array_equal(mat.to_dense(), dense)

    def test_from_dense_keep_zeros(self):
        dense = np.zeros((3, 3))
        mat = csr_from_dense(dense, keep_zeros=True)
        assert mat.nnz == 9
        assert np.array_equal(mat.to_dense(), dense)

    def test_from_coo_sorts_rows(self):
        mat = csr_from_coo([1, 0, 1], [0, 2, 1], [5.0, 1.0, 2.0], (2, 3))
        assert np.array_equal(mat.rowptr, [0, 1, 3])
        assert np.array_equal(mat.colidx, [2, 0, 1])
        assert np.array_equal(mat.values, [1.0, 5.0, 2.0])

    def test_from_coo_out_of_range(self):
        with pytest.raises(ValueError):
            csr_from_coo([0], [5], [1.0], (1, 3))
        with pytest.raises(ValueError):
            csr_from_coo([2], [0], [1.0], (1, 3))

    def test_validation_rejects_bad_rowptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.zeros(2, np.uint32), np.array([0, 2, 1], np.uint32), (2, 2))
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.zeros(2, np.uint32), np.array([1, 1, 2], np.uint32), (2, 2))

    def test_validation_rejects_bad_colidx(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(1), np.array([9], np.uint32), np.array([0, 1], np.uint32), (1, 3))

    def test_scipy_roundtrip(self):
        rng = np.random.default_rng(1)
        ours, theirs = random_csr(rng)
        assert np.allclose(ours.to_scipy().toarray(), theirs.toarray())


class TestSpMV:
    def test_matches_scipy_random(self):
        rng = np.random.default_rng(2)
        for seed in range(5):
            ours, theirs = random_csr(np.random.default_rng(seed), m=31, n=27)
            x = rng.standard_normal(27)
            assert np.allclose(ours.matvec(x), theirs @ x)

    def test_handles_empty_rows(self):
        dense = np.zeros((5, 4))
        dense[0, 1] = 2.0
        dense[3, 2] = -1.0
        mat = csr_from_dense(dense)
        x = np.arange(4.0)
        assert np.allclose(mat.matvec(x), dense @ x)

    def test_all_empty_matrix(self):
        mat = csr_from_dense(np.zeros((4, 4)))
        assert np.allclose(mat.matvec(np.ones(4)), 0.0)

    def test_out_parameter(self):
        mat = csr_from_dense(np.eye(3))
        out = np.empty(3)
        res = mat.matvec(np.array([1.0, 2.0, 3.0]), out=out)
        assert res is out
        assert np.allclose(out, [1, 2, 3])

    def test_fixed_width_path_matches_general(self):
        op = five_point_operator(6, 5, np.ones((5, 6)), np.ones((5, 6)), 0.3)
        x = np.random.default_rng(3).standard_normal(30)
        general = spmv(op.values, op.colidx, op.rowptr, x, 30)
        fixed = spmv_fixed_width(op.values, op.colidx, x, 5)
        assert np.allclose(general, fixed)

    def test_row_dot_matches(self):
        rng = np.random.default_rng(4)
        ours, theirs = random_csr(rng, m=10, n=10)
        x = rng.standard_normal(10)
        full = theirs @ x
        for row in range(10):
            assert np.isclose(
                row_dot(ours.values, ours.colidx, ours.rowptr, row, x), full[row]
            )


class TestFivePointOperator:
    def test_five_entries_every_row(self):
        op = five_point_operator(4, 3, np.ones((3, 4)), np.ones((3, 4)), 0.1)
        assert op.is_fixed_width() == 5
        assert op.nnz == 5 * 12

    def test_symmetry(self):
        rng = np.random.default_rng(5)
        kx = rng.uniform(0.5, 2.0, (4, 5))
        ky = rng.uniform(0.5, 2.0, (4, 5))
        op = five_point_operator(5, 4, kx, ky, 0.25)
        dense = op.to_dense()
        assert np.allclose(dense, dense.T)

    def test_positive_definite(self):
        rng = np.random.default_rng(6)
        kx = rng.uniform(0.5, 2.0, (6, 6))
        ky = rng.uniform(0.5, 2.0, (6, 6))
        op = five_point_operator(6, 6, kx, ky, 0.5)
        eigvals = np.linalg.eigvalsh(op.to_dense())
        assert eigvals.min() > 0

    def test_row_sums_identity_for_interior(self):
        """L has zero row sums, so (I + dt L) rows sum to 1."""
        op = five_point_operator(5, 5, np.ones((5, 5)), np.ones((5, 5)), 0.7)
        sums = op.to_dense().sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_boundary_zero_coefficients_in_range(self):
        op = five_point_operator(3, 3, np.ones((3, 3)), np.ones((3, 3)), 0.1)
        assert int(op.colidx.max()) < 9  # clamped indices stay in range
        # Corner row 0: south and west slots are zero-coefficient.
        assert op.values[0] == 0.0 and op.values[1] == 0.0

    def test_matches_dense_laplacian(self):
        """Against an independently assembled dense operator."""
        nx, ny, c = 4, 3, 0.2
        op = five_point_operator(nx, ny, np.ones((ny, nx)), np.ones((ny, nx)), c)
        n = nx * ny
        dense = np.zeros((n, n))
        for j in range(ny):
            for i in range(nx):
                r = j * nx + i
                for dj, di in ((-1, 0), (0, -1), (0, 1), (1, 0)):
                    jj, ii = j + dj, i + di
                    if 0 <= jj < ny and 0 <= ii < nx:
                        dense[r, jj * nx + ii] -= c
                        dense[r, r] += c
                dense[r, r] += 1.0
        assert np.allclose(op.to_dense(), dense)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            five_point_operator(3, 3, np.ones((2, 3)), np.ones((3, 3)), 0.1)


class TestMatrixHelpers:
    def test_diagonal(self):
        dense = np.diag([1.0, 2.0, 3.0])
        dense[0, 2] = 5.0
        mat = csr_from_dense(dense)
        assert np.array_equal(mat.diagonal(), [1.0, 2.0, 3.0])

    def test_row_lengths(self):
        mat = csr_from_dense(np.array([[1.0, 1.0], [0.0, 0.0], [1.0, 0.0]]))
        assert np.array_equal(mat.row_lengths(), [2, 0, 1])
        assert mat.is_fixed_width() is None

    def test_copy_is_independent(self):
        mat = csr_from_dense(np.eye(2))
        dup = mat.copy()
        dup.values[0] = 99.0
        assert mat.values[0] == 1.0


@given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_five_point_spmv_matches_scipy(nx, ny, seed):
    rng = np.random.default_rng(seed)
    kx = rng.uniform(0.1, 3.0, (ny, nx))
    ky = rng.uniform(0.1, 3.0, (ny, nx))
    op = five_point_operator(nx, ny, kx, ky, 0.4)
    x = rng.standard_normal(nx * ny)
    assert np.allclose(op.matvec(x), op.to_scipy() @ x)
