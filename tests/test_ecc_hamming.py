"""SECDED engine tests: exhaustive single-bit correction, double detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import SECDEDCode
from repro.ecc.profiles import (
    csr_element_secded,
    rowptr_secded64,
    rowptr_secded128,
    vector_secded64,
    vector_secded128,
)
from repro.errors import ConfigurationError

ALL_PROFILES = [
    csr_element_secded,
    rowptr_secded64,
    rowptr_secded128,
    vector_secded64,
    vector_secded128,
]


def _random_codewords(code, n, seed=0):
    """Random encoded codewords with data bits populated, checks valid."""
    rng = np.random.default_rng(seed)
    lanes = rng.integers(0, 2**63, (n, code.n_lanes)).astype(np.uint64)
    # Zero everything outside the codeword (padding) and let encode own
    # the check slots.
    keep = np.zeros(code.n_lanes, dtype=np.uint64)
    for p in code.data_positions:
        keep[p // 64] |= np.uint64(1) << np.uint64(p % 64)
    lanes &= keep
    code.encode(lanes)
    return lanes


def _flip(lanes, idx, pos):
    lanes[idx, pos // 64] ^= np.uint64(1) << np.uint64(pos % 64)


@pytest.mark.parametrize("factory", ALL_PROFILES)
class TestProfiles:
    def test_budget_matches_paper(self, factory):
        code = factory()
        budget = code.n_syndrome_bits + 1
        if "128" in code.name:
            assert budget == 9
        else:
            assert budget == 8

    def test_encoded_words_check_clean(self, factory):
        code = factory()
        lanes = _random_codewords(code, 100)
        assert not code.detect(lanes).any()
        report = code.check_and_correct(lanes)
        assert report.clean

    def test_every_single_bit_flip_corrected(self, factory):
        """Exhaustive: each position in the codeword corrects back exactly."""
        code = factory()
        positions = sorted(
            code.data_positions + code.syndrome_slots + [code.parity_slot]
        )
        lanes = _random_codewords(code, len(positions), seed=1)
        original = lanes.copy()
        for i, pos in enumerate(positions):
            _flip(lanes, i, pos)
        report = code.check_and_correct(lanes)
        assert report.n_corrected == len(positions)
        assert report.n_uncorrectable == 0
        assert np.array_equal(lanes, original)

    def test_every_double_bit_flip_detected_not_corrected(self, factory):
        """Randomised pairs: parity stays even, syndrome nonzero -> DUE."""
        code = factory()
        rng = np.random.default_rng(2)
        positions = sorted(
            code.data_positions + code.syndrome_slots + [code.parity_slot]
        )
        n = 200
        lanes = _random_codewords(code, n, seed=3)
        corrupted = lanes.copy()
        for i in range(n):
            a, b = rng.choice(len(positions), size=2, replace=False)
            _flip(corrupted, i, positions[a])
            _flip(corrupted, i, positions[b])
        report = code.check_and_correct(corrupted)
        assert report.n_uncorrectable == n
        assert report.n_corrected == 0

    def test_detect_flags_without_modifying(self, factory):
        code = factory()
        lanes = _random_codewords(code, 10, seed=4)
        _flip(lanes, 3, code.data_positions[0])
        snapshot = lanes.copy()
        flags = code.detect(lanes)
        assert np.array_equal(lanes, snapshot)
        assert flags[3] and flags.sum() == 1

    def test_padding_bits_outside_code_are_ignored(self, factory):
        code = factory()
        n_bits = 64 * code.n_lanes
        outside = set(range(n_bits)) - set(
            code.data_positions + code.syndrome_slots + [code.parity_slot]
        )
        if not outside:
            pytest.skip("profile covers all physical bits")
        lanes = _random_codewords(code, 1, seed=5)
        _flip(lanes, 0, min(outside))
        assert not code.detect(lanes).any()


class TestEngineConstruction:
    def test_csr_element_is_exact_fit(self):
        code = csr_element_secded()
        assert code.n_codeword_bits == 96
        assert code.n_data_bits == 88
        assert code.n_syndrome_bits == 7
        assert not code.surplus_slots

    def test_secded128_surplus_slots_become_data(self):
        code = rowptr_secded128()
        assert code.n_syndrome_bits == 8
        assert len(code.surplus_slots) == 16 - 9
        # Surplus slots are protected: flipping one is corrected.
        lanes = np.zeros((1, 2), dtype=np.uint64)
        code.encode(lanes)
        pos = code.surplus_slots[0]
        lanes[0, pos // 64] ^= np.uint64(1) << np.uint64(pos % 64)
        report = code.check_and_correct(lanes)
        assert report.n_corrected == 1

    def test_too_few_check_slots_raises(self):
        with pytest.raises(ConfigurationError):
            SECDEDCode(1, range(64), check_positions=range(5))

    def test_duplicate_positions_raise(self):
        with pytest.raises(ConfigurationError):
            SECDEDCode(1, [0, 0, 1], check_positions=[0])

    def test_check_positions_must_be_in_codeword(self):
        with pytest.raises(ConfigurationError):
            SECDEDCode(1, range(32), check_positions=[40] + list(range(7)))

    def test_lane_count_validation(self):
        code = vector_secded64()
        with pytest.raises(ValueError):
            code.encode(np.zeros((3, 2), dtype=np.uint64))

    def test_triple_flip_never_silent(self):
        """3 flips have odd parity: SECDED sees *something* (may miscorrect)."""
        code = vector_secded64()
        rng = np.random.default_rng(6)
        positions = sorted(
            code.data_positions + code.syndrome_slots + [code.parity_slot]
        )
        lanes = _random_codewords(code, 300, seed=7)
        for i in range(300):
            for p in rng.choice(len(positions), size=3, replace=False):
                _flip(lanes, i, positions[p])
        report = code.check_and_correct(lanes)
        # Never reported clean: every codeword is corrected (possibly to a
        # wrong word - the documented SECDED failure mode) or flagged.
        assert (
            report.n_corrected + report.n_uncorrectable == 300
        )


@given(st.integers(0, 2**63 - 1), st.integers(0, 63))
@settings(max_examples=60, deadline=None)
def test_vector64_roundtrip_and_single_correction(word, pos):
    """Property: encode -> flip any bit -> check restores the word."""
    code = vector_secded64()
    lanes = np.array([[word]], dtype=np.uint64)
    # encode owns the 8 LSB check slots; keep data in the upper 56 bits.
    lanes &= ~np.uint64(0xFF)
    code.encode(lanes)
    original = lanes.copy()
    lanes[0, 0] ^= np.uint64(1) << np.uint64(pos)
    report = code.check_and_correct(lanes)
    assert report.n_corrected == 1
    assert np.array_equal(lanes, original)
