"""The sweep orchestrator: specs, stores, executor, resume, CLI.

The acceptance bars (ISSUE 5):

* merged cell records are bitwise-identical for ``workers=1`` vs
  ``workers=4``;
* a sweep killed after N cells and resumed reproduces an uninterrupted
  run cell-for-cell, without re-executing completed cells.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sweeps.core import run_sweep
from repro.sweeps.executor import Task, resolve_runner, run_tasks, spawn_streams
from repro.sweeps.presets import PRESETS, available_presets, get_preset
from repro.sweeps.render import render_sweep, sweep_json
from repro.sweeps.spec import Axis, SweepSpec
from repro.sweeps.store import RunStore

#: In-process probe runner (workers=1 paths only): counts executions via
#: marker files in SWEEP_PROBE_DIR, which stays *out* of cell identity.
PROBE_RUNNER = f"{__name__}:probe_cell"


def probe_cell(*, seed=None, value=0, **_params) -> dict:
    probe_dir = os.environ.get("SWEEP_PROBE_DIR")
    if probe_dir:
        with open(Path(probe_dir) / f"cell-{value}.ran", "a") as fh:
            fh.write("ran\n")
    rng = np.random.default_rng(seed)
    return {"value": value, "draw": int(rng.integers(1 << 30))}


def probe_spec(n=6, **base) -> SweepSpec:
    return SweepSpec(
        name="probe", runner=PROBE_RUNNER,
        axes=(Axis("value", tuple(range(n))),), base=base,
    )


def tiny_matrix_spec(**overrides) -> SweepSpec:
    """A seconds-sized resilience matrix for executor-level tests."""
    params = dict(grid=8, trials=2, methods=("cg",), schemes=("sed",),
                  rates=(1e-6,), recoveries=("raise", "repopulate"),
                  max_iters=400)
    params.update(overrides)
    return get_preset("resilience-matrix", **params)


# ---------------------------------------------------------------------------
class TestSpec:
    def test_cells_are_the_filtered_product(self):
        spec = SweepSpec(
            name="s", runner="m:f",
            axes=(Axis("a", (1, 2)), Axis("b", ("x", "y"))),
            filters=(lambda cell: not (cell["a"] == 2 and cell["b"] == "y"),),
        )
        assert spec.cells() == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 2, "b": "x"},
        ]
        assert len(spec) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Axis("a", ())
        with pytest.raises(ConfigurationError):
            SweepSpec(name="s", runner="no-colon", axes=(Axis("a", (1,)),))
        with pytest.raises(ConfigurationError):
            SweepSpec(name="s", runner="m:f",
                      axes=(Axis("a", (1,)), Axis("a", (2,))))
        with pytest.raises(ConfigurationError):
            SweepSpec(name="s", runner="m:f", axes=(Axis("a", (1,)),),
                      base={"a": 2})
        with pytest.raises(ConfigurationError):
            SweepSpec(name="s", runner="m:f", axes=(Axis("a", (1,)),),
                      base={"bad": object()})

    def test_cell_key_is_stable_and_identity_sensitive(self):
        spec = SweepSpec(name="s", runner="m:f",
                         axes=(Axis("a", (1, 2)),), base={"n": 3})
        cell = {"a": 1}
        key = spec.cell_key(cell)
        assert key == spec.cell_key(cell)
        assert len(key) == 16
        # Renaming the spec does not orphan cells...
        assert spec.replace(name="other").cell_key(cell) == key
        # ...but changing what the cell computes does.
        assert spec.cell_key({"a": 2}) != key
        assert spec.cell_key(cell, seed=1) != key
        assert spec.replace(base={"n": 4}).cell_key(cell) != key
        assert spec.replace(runner="m:g").cell_key(cell) != key

    def test_cell_seed_derives_from_identity(self):
        spec = SweepSpec(name="s", runner="m:f", axes=(Axis("a", (1, 2)),))
        draw = lambda cell, seed=0: int(  # noqa: E731
            np.random.default_rng(spec.cell_seed(cell, seed)).integers(1 << 62)
        )
        assert draw({"a": 1}) == draw({"a": 1})
        assert draw({"a": 1}) != draw({"a": 2})
        assert draw({"a": 1}) != draw({"a": 1}, seed=7)


# ---------------------------------------------------------------------------
class TestRunStore:
    def test_round_trip_and_resume_view(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunStore(path) as store:
            store.append({"key": "k1", "result": {"x": 1}})
            store.append({"key": "k2", "result": {"x": 2}})
        reopened = RunStore(path)
        assert reopened.completed == {"k1", "k2"}
        assert reopened.get("k1")["result"] == {"x": 1}
        assert len(reopened) == 2
        assert "k1" in reopened

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"key": "ok", "result": {}}) +
                        '\n{"key": "torn", "resu')
        store = RunStore(path)
        assert store.completed == {"ok"}

    def test_duplicate_key_keeps_latest(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"key": "k", "result": {"x": 1}}) + "\n"
            + json.dumps({"key": "k", "result": {"x": 2}}) + "\n"
        )
        assert RunStore(path).get("k")["result"] == {"x": 2}

    def test_append_requires_key(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunStore(tmp_path / "x.jsonl").append({"result": {}})

    def test_append_after_torn_line_starts_fresh(self, tmp_path):
        """Appending onto a newline-less torn tail must not weld the new
        record to the torn bytes (that would lose both on reload)."""
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"key": "ok", "result": {}}) +
                        '\n{"key": "torn", "resu')
        store = RunStore(path)
        store.append({"key": "fresh", "result": {"x": 3}})
        store.close()
        reloaded = RunStore(path)
        assert reloaded.completed == {"ok", "fresh"}
        assert reloaded.get("fresh")["result"] == {"x": 3}


# ---------------------------------------------------------------------------
class TestExecutor:
    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            Task(key="k", runner="no-colon", params={})
        with pytest.raises(ConfigurationError):
            Task(key="k", runner="m:f", params={"seed": 1})

    def test_resolve_runner_errors(self):
        with pytest.raises(ConfigurationError):
            resolve_runner("repro.sweeps.runners:not_a_runner")
        assert resolve_runner(PROBE_RUNNER) is probe_cell

    def test_spawn_streams_deterministic_and_independent(self):
        a = spawn_streams(3, 4)
        b = spawn_streams(3, 4)
        draws_a = [int(np.random.default_rng(s).integers(1 << 62)) for s in a]
        draws_b = [int(np.random.default_rng(s).integers(1 << 62)) for s in b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 4

    def test_run_tasks_streams_and_validates(self):
        tasks = [Task(key=f"k{i}", runner=PROBE_RUNNER, params={"value": i})
                 for i in range(3)]
        seen = []
        pairs = run_tasks(tasks, workers=1,
                          on_record=lambda k, r: seen.append(k))
        assert sorted(seen) == ["k0", "k1", "k2"]
        assert {k: r["value"] for k, r in pairs} == {"k0": 0, "k1": 1, "k2": 2}


# ---------------------------------------------------------------------------
class TestDeterminismAcceptance:
    """ISSUE 5 acceptance: workers=1 == workers=4, bitwise."""

    @pytest.mark.slow
    def test_matrix_records_identical_across_worker_counts(self):
        spec = tiny_matrix_spec(methods=("cg", "jacobi"))
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert serial.records == parallel.records
        assert serial.complete and parallel.complete
        assert len(serial.records) == 4

    def test_cell_results_depend_only_on_identity(self):
        spec = probe_spec(4)
        first = run_sweep(spec, workers=1)
        second = run_sweep(spec, workers=1)
        assert first.records == second.records


# ---------------------------------------------------------------------------
class TestResumeAcceptance:
    """ISSUE 5 acceptance: interrupt after N cells, resume, identical
    store, completed cells not re-executed."""

    def test_resumed_run_matches_uninterrupted_run(self, tmp_path,
                                                   monkeypatch):
        probe_dir = tmp_path / "probe"
        probe_dir.mkdir()
        monkeypatch.setenv("SWEEP_PROBE_DIR", str(probe_dir))
        spec = probe_spec(6)

        uninterrupted = run_sweep(spec, workers=1,
                                  store=tmp_path / "clean.jsonl")

        # "Kill" a second run after 3 cells, then resume it.
        store_path = tmp_path / "resumed.jsonl"
        for path in probe_dir.glob("*.ran"):
            path.unlink()
        partial = run_sweep(spec, workers=1, store=store_path, limit=3)
        assert partial.executed == 3
        assert partial.remaining == 3
        assert not partial.complete
        resumed = run_sweep(spec, workers=1, store=store_path)
        assert resumed.complete
        assert resumed.executed == 3 and resumed.restored == 3

        # Cell-for-cell identical to the uninterrupted run.
        assert resumed.records == uninterrupted.records
        clean = [json.loads(line) for line
                 in (tmp_path / "clean.jsonl").read_text().splitlines()]
        merged = [json.loads(line) for line
                  in store_path.read_text().splitlines()]
        assert sorted(merged, key=lambda r: r["key"]) == \
               sorted(clean, key=lambda r: r["key"])

        # Completed cells ran exactly once across interrupt + resume.
        for value in range(6):
            marks = (probe_dir / f"cell-{value}.ran").read_text().splitlines()
            assert marks == ["ran"]

    @pytest.mark.slow
    def test_campaign_resume_matches_uninterrupted(self, tmp_path):
        spec = tiny_matrix_spec()
        uninterrupted = run_sweep(spec, workers=1)
        store_path = tmp_path / "campaign.jsonl"
        run_sweep(spec, workers=1, store=store_path, limit=1)
        resumed = run_sweep(spec, workers=2, store=store_path)
        assert resumed.executed == 1 and resumed.restored == 1
        assert resumed.records == uninterrupted.records

    def test_changing_seed_invalidates_the_store(self, tmp_path):
        spec = probe_spec(2)
        store_path = tmp_path / "seeded.jsonl"
        run_sweep(spec, workers=1, store=store_path, seed=0)
        second = run_sweep(spec, workers=1, store=store_path, seed=1)
        assert second.restored == 0 and second.executed == 2


# ---------------------------------------------------------------------------
class TestPresets:
    def test_every_preset_builds_with_cells(self):
        for name in available_presets():
            spec = get_preset(name)
            assert len(spec) > 0, name
            assert spec.runner.startswith("repro.sweeps.runners:")
        assert set(PRESETS) == set(available_presets())

    def test_figure_registry_and_presets_stay_in_sync(self):
        """Every figure the harness registry names must resolve as a
        preset — run_experiment validates against EXPERIMENTS but
        executes through PRESETS, so drift would orphan a figure."""
        from repro.harness.experiments import EXPERIMENTS

        assert set(EXPERIMENTS) <= set(available_presets())

    def test_unknown_preset_and_bad_override(self):
        with pytest.raises(ConfigurationError):
            get_preset("nope")
        with pytest.raises(ConfigurationError):
            get_preset("fig4", rates=(1e-6,))

    def test_overrides_reshape_the_grid(self):
        spec = get_preset("resilience-matrix", methods=("cg",),
                          schemes=("sed",), rates=(1e-6,),
                          recoveries=("raise",), grid=6, trials=1)
        assert len(spec) == 1
        assert spec.base["grid"] == 6
        # None-valued overrides fall back to preset defaults.
        assert get_preset("resilience-matrix", grid=None).base["grid"] == 12

    def test_guarantee_matrix_filter_prunes_models(self):
        spec = get_preset("guarantee-matrix")
        cells = spec.cells()
        assert all(c["model"] == "single" for c in cells
                   if c["target"] != "values")
        assert {c["model"] for c in cells if c["target"] == "values"} == \
               {"single", "double", "multi5", "burst32"}


# ---------------------------------------------------------------------------
class TestRendering:
    @pytest.mark.slow
    def test_campaign_matrix_layout(self):
        spec = tiny_matrix_spec()
        result = run_sweep(spec, workers=1)
        text = render_sweep(spec, result.records)
        assert "rate=1e-06" in text
        assert "raise" in text and "repopulate" in text
        assert "det=" in text and "sdc=" in text
        payload = json.loads(sweep_json(spec, result))
        assert payload["spec"] == "resilience-matrix"
        assert payload["complete"] is True
        assert len(payload["records"]) == len(result.records)

    def test_figure_records_render_as_tables(self):
        rows = [
            {"figure": "figX", "series": "host", "key": "sed",
             "overhead": 0.25, "source": "measured", "paper_value": None},
        ]
        spec = get_preset("fig4")
        text = render_sweep(spec, [
            {"key": "k", "spec": "fig4", "cell": {"series": "host"},
             "result": {"rows": rows}},
        ])
        assert "sed" in text and "25.0%" in text

    def test_empty_records_render_placeholder(self):
        spec = get_preset("fig4")
        assert "no completed cells" in render_sweep(spec, [])


# ---------------------------------------------------------------------------
class TestSweepCli:
    def test_list_presets(self, capsys):
        from repro.sweeps.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "resilience-matrix" in out and "fig7" in out

    def test_requires_preset(self, capsys):
        from repro.sweeps.cli import main

        assert main([]) == 2

    def test_bad_preset_and_bad_override_exit_cleanly(self, capsys):
        from repro.sweeps.cli import main

        assert main(["--preset", "nope"]) == 2
        assert "error:" in capsys.readouterr().out
        assert main(["--preset", "fig4", "--trials", "3"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_json_creates_parent_directories(self, tmp_path, capsys):
        from repro.sweeps.cli import main

        dump = tmp_path / "deep" / "dir" / "probe.json"
        # The probe runner keeps this instant; any preset would do, but
        # figure presets measure timings, so use the spec-level path.
        spec_args = ["--preset", "resilience-matrix", "--grid", "6",
                     "--trials", "1", "--methods", "cg", "--schemes", "sed",
                     "--rates", "1e-7", "--recoveries", "raise",
                     "--max-iters", "200", "--json", str(dump)]
        assert main(spec_args) == 0
        assert json.loads(dump.read_text())["complete"] is True

    @pytest.mark.slow
    def test_interrupt_resume_and_artifacts(self, tmp_path, capsys):
        from repro.sweeps.cli import main

        store = tmp_path / "cli.jsonl"
        out = tmp_path / "matrix.txt"
        dump = tmp_path / "matrix.json"
        argv = [
            "--preset", "resilience-matrix", "--grid", "8", "--trials", "2",
            "--methods", "cg", "--schemes", "sed", "--rates", "1e-6",
            "--recoveries", "raise", "repopulate", "--max-iters", "400",
            "--store", str(store),
        ]
        assert main(argv + ["--limit", "1"]) == 0
        assert "[partial] 1 cells still missing" in capsys.readouterr().out
        assert main(argv + ["--out", str(out), "--json", str(dump)]) == 0
        final = capsys.readouterr().out
        assert "1 cells run, 1 restored" in final
        assert "det=" in out.read_text()
        payload = json.loads(dump.read_text())
        assert payload["complete"] is True and len(payload["records"]) == 2

    def test_repro_sweep_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["sweep", "--list"]) == 0
        assert "guarantee-matrix" in capsys.readouterr().out
