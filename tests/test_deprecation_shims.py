"""Deprecation shims over the unified API (ISSUE 2 satellite).

``Protection``, ``protected_cg_solve`` and ``protected_ppcg_solve`` keep
their old signatures but forward to the registry: results must be
*identical* to the registry path, and each call must emit exactly one
DeprecationWarning.
"""

import warnings

import numpy as np
import pytest

from repro.csr import five_point_operator
from repro.protect import CheckPolicy, ProtectedCSRMatrix, ProtectionConfig
from repro.solvers import get_method, protected_cg_solve, protected_ppcg_solve
from repro.tealeaf import Deck, TeaLeafDriver
from repro.tealeaf.driver import Protection


def make_system(n=8, seed=5):
    rng = np.random.default_rng(seed)
    A = five_point_operator(
        n, n, rng.uniform(0.5, 2.0, (n, n)), rng.uniform(0.5, 2.0, (n, n)), 0.4
    )
    return A, A.matvec(rng.standard_normal(A.n_rows))


def single_deprecation(record) -> bool:
    return sum(issubclass(w.category, DeprecationWarning) for w in record) == 1


class TestProtectedCGShim:
    def test_old_signature_matches_registry_path(self):
        A, b = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        with pytest.warns(DeprecationWarning) as record:
            old = protected_cg_solve(
                pmat, b, eps=1e-24,
                policy=CheckPolicy(interval=8, correct=False),
                vector_scheme="secded64",
            )
        assert single_deprecation(record)
        new = get_method("cg").protected(
            pmat, b, eps=1e-24,
            policy=CheckPolicy(interval=8, correct=False),
            vector_scheme="secded64",
        )
        assert np.array_equal(old.x, new.x)
        assert old.iterations == new.iterations
        assert old.converged == new.converged
        assert old.residual_norms == new.residual_norms
        assert old.info == new.info

    def test_matches_config_driven_solve(self):
        import repro

        A, b = make_system(seed=6)
        with pytest.warns(DeprecationWarning):
            old = protected_cg_solve(
                ProtectedCSRMatrix(A, "secded64", "secded64"), b, eps=1e-24,
                policy=CheckPolicy(interval=16, correct=False),
                vector_scheme="secded64",
            )
        new = repro.solve(
            A, b, method="cg", eps=1e-24,
            protection=ProtectionConfig.deferred(window=16),
        )
        assert np.array_equal(old.x, new.x)
        assert old.iterations == new.iterations


class TestProtectedPPCGShim:
    def test_old_signature_matches_registry_path(self):
        A, b = make_system(seed=7)
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        with pytest.warns(DeprecationWarning) as record:
            old = protected_ppcg_solve(
                pmat, b, eps=1e-24, inner_steps=4, vector_scheme="secded64",
            )
        assert single_deprecation(record)
        new = get_method("ppcg").protected(
            pmat, b, eps=1e-24, inner_steps=4, vector_scheme="secded64",
        )
        assert np.array_equal(old.x, new.x)
        assert old.iterations == new.iterations
        assert old.info == new.info


class TestProtectionShim:
    def test_construction_warns_once(self):
        with pytest.warns(DeprecationWarning) as record:
            prot = Protection(element_scheme="sed", rowptr_scheme="sed",
                              check_interval=16, correct=False)
        assert single_deprecation(record)
        config = prot.to_config()
        assert config.element_scheme == "sed"
        assert config.interval == 16
        assert config.correct is False
        assert prot.protects_matrix

    def test_driver_results_identical_to_config(self):
        deck = Deck(x_cells=10, y_cells=10, end_step=1, tl_eps=1e-20)
        with pytest.warns(DeprecationWarning):
            legacy = Protection(element_scheme="secded64", rowptr_scheme="secded64",
                                vector_scheme="secded64")
        old_driver = TeaLeafDriver(deck, legacy)
        old_driver.run()
        new_driver = TeaLeafDriver(
            Deck(x_cells=10, y_cells=10, end_step=1, tl_eps=1e-20),
            ProtectionConfig.paper_default(),
        )
        new_driver.run()
        assert np.array_equal(old_driver.state.u, new_driver.state.u)

    def test_no_warning_from_in_repo_modules(self):
        """The library itself never routes through the shims any more."""
        import repro

        A, b = make_system(seed=9)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.solve(A, b, method="ppcg", eps=1e-24,
                        protection=ProtectionConfig.paper_default())
            TeaLeafDriver(Deck(x_cells=8, y_cells=8, end_step=1),
                          ProtectionConfig.deferred(window=8)).run()
