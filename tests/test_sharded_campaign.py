"""Sharded campaign executor: determinism, merging, JSONL, CLI.

The acceptance bar (ISSUE 4): a campaign of >= 200 trials run with
``--workers 4`` produces bitwise-identical merged counts to the same
campaign at ``--workers 1``.
"""

import json

import numpy as np
import pytest

from repro.csr import five_point_operator
from repro.errors import ConfigurationError, Outcome
from repro.faults import (
    CampaignTask,
    MultiBitFlip,
    Region,
    SingleBitFlip,
    merge_jsonl,
    merge_records,
    plan_shards,
    run_sharded_campaign,
    run_solver_campaign,
)
from repro.faults.campaign import main as campaign_main


def make_matrix(n=16, seed=0):
    rng = np.random.default_rng(seed)
    return five_point_operator(
        n, n, rng.uniform(0.5, 2.0, (n, n)), rng.uniform(0.5, 2.0, (n, n)), 0.3
    )


def matrix_task(scheme="secded64", model=None):
    return CampaignTask("matrix", dict(
        matrix=make_matrix(), element_scheme=scheme, rowptr_scheme=scheme,
        region=Region.VALUES, model=model or SingleBitFlip(),
    ))


# ---------------------------------------------------------------------------
class TestShardPlanning:
    def test_sizes_sum_to_trials(self):
        shards = plan_shards(103, seed=0, shard_size=25)
        assert [s.n_trials for s in shards] == [25, 25, 25, 25, 3]
        assert [s.index for s in shards] == list(range(5))

    def test_plan_is_deterministic(self):
        a = plan_shards(60, seed=7, shard_size=20)
        b = plan_shards(60, seed=7, shard_size=20)
        for sa, sb in zip(a, b):
            assert np.random.default_rng(sa.seed).integers(2**31) == \
                   np.random.default_rng(sb.seed).integers(2**31)

    def test_different_shards_get_independent_streams(self):
        shards = plan_shards(40, seed=7, shard_size=20)
        draws = {
            int(np.random.default_rng(s.seed).integers(2**31)) for s in shards
        }
        assert len(draws) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_shards(0)
        with pytest.raises(ConfigurationError):
            plan_shards(10, shard_size=0)
        with pytest.raises(ConfigurationError):
            CampaignTask("nope", {})
        with pytest.raises(ConfigurationError):
            CampaignTask("matrix", {"n_trials": 5})


# ---------------------------------------------------------------------------
class TestDeterminismAcceptance:
    """ISSUE 4 acceptance: >= 200 trials, workers=4 == workers=1, bitwise."""

    def test_200_trials_4_workers_bitwise_identical_counts(self):
        task = matrix_task("secded64", MultiBitFlip(k=2, spread=0))
        serial = run_sharded_campaign(task, 200, workers=1, seed=3)
        parallel = run_sharded_campaign(task, 200, workers=4, seed=3)
        assert serial.n_trials == parallel.n_trials == 200
        assert serial.counts == parallel.counts
        assert serial.info == parallel.info

    def test_solver_campaign_shards_identically(self):
        matrix = make_matrix(10)
        b = np.random.default_rng(5).standard_normal(matrix.n_rows)
        task = CampaignTask("solver", dict(
            matrix=matrix, b=b, element_scheme="sed", rowptr_scheme="sed",
            region=Region.VALUES, model=SingleBitFlip(), method="cg",
            recovery="rollback",
        ))
        serial = run_sharded_campaign(task, 12, workers=1, seed=1, shard_size=6)
        parallel = run_sharded_campaign(task, 12, workers=2, seed=1, shard_size=6)
        assert serial.counts == parallel.counts
        assert serial.info["recovered"] == parallel.info["recovered"]


# ---------------------------------------------------------------------------
class TestMergeAndJsonl:
    def test_jsonl_stream_rebuilds_result(self, tmp_path):
        out = tmp_path / "campaign.jsonl"
        task = matrix_task("sed")
        direct = run_sharded_campaign(task, 60, workers=1, seed=2,
                                      shard_size=20, out=str(out))
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 3
        assert sum(line["n_trials"] for line in lines) == 60
        rebuilt = merge_jsonl(out)
        assert rebuilt.counts == direct.counts
        assert rebuilt.n_trials == 60

    def test_merge_sums_counts_and_tallies(self):
        records = [
            {"shard": 1, "n_trials": 10, "scheme": "sed+sed", "region": "values",
             "model": "single-bit", "counts": {"detected": 9, "clean": 1},
             "info": {"recovered": 2, "method": "cg", "mean_time": 0.5}},
            {"shard": 0, "n_trials": 30, "scheme": "sed+sed", "region": "values",
             "model": "single-bit", "counts": {"detected": 30},
             "info": {"recovered": 1, "method": "cg", "mean_time": 0.1}},
        ]
        merged = merge_records(records)
        assert merged.n_trials == 40
        assert merged.counts[Outcome.DETECTED] == 39
        assert merged.counts[Outcome.CLEAN] == 1
        assert merged.info["recovered"] == 3
        assert merged.info["method"] == "cg"
        assert merged.info["shards"] == 2
        # mean_* keys are trial-weighted: (0.5*10 + 0.1*30) / 40.
        assert merged.info["mean_time"] == pytest.approx(0.2)

    def test_merge_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            merge_records([])


# ---------------------------------------------------------------------------
class TestOutcomeSplit:
    """The SILENT split: converged-wrong vs detected-by-residual."""

    def test_residual_outcome_is_detected_not_sdc(self):
        assert Outcome.RESIDUAL.is_detected
        assert not Outcome.RESIDUAL.is_sdc

    def test_classify_splits_on_convergence(self):
        from repro.faults.campaign import _classify

        class _Report:
            n_uncorrectable = 0
            n_corrected = 0

        assert _classify([_Report()], False) is Outcome.SILENT
        assert _classify([_Report()], False, converged=False) is Outcome.RESIDUAL
        assert _classify([_Report()], False, converged=True) is Outcome.SILENT
        assert _classify([_Report()], True, converged=False) is Outcome.CLEAN

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # divergence overflow
    def test_solver_campaign_reports_residual_separately(self):
        # Unprotected values region (rowptr-only protection): flips in
        # values are never scheme-detected, so every data-corrupting
        # trial lands in SILENT or RESIDUAL — the split under test.
        matrix = make_matrix(8)
        b = np.random.default_rng(6).standard_normal(matrix.n_rows)
        result = run_solver_campaign(
            matrix, b, element_scheme=None, rowptr_scheme="sed",
            region=Region.VALUES, model=MultiBitFlip(k=3, spread=0),
            n_trials=30, seed=4, eps=1e-24, max_iters=400,
        )
        assert result.counts.get(Outcome.DETECTED, 0) == 0
        noticed_by_residual = result.counts.get(Outcome.RESIDUAL, 0)
        assert noticed_by_residual >= 1
        assert result.residual_detected_rate == noticed_by_residual / 30
        # The split is exhaustive over completed trials.
        assert sum(result.counts.values()) == 30


# ---------------------------------------------------------------------------
class TestCampaignCli:
    def test_cli_matrix_kind_smoke(self, capsys):
        rc = campaign_main([
            "--kind", "matrix", "--trials", "20", "--shard-size", "10",
            "--workers", "1", "--scheme", "sed",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sed+sed" in out and "shards=2" in out

    def test_cli_streams_jsonl(self, tmp_path, capsys):
        out = tmp_path / "cli.jsonl"
        rc = campaign_main([
            "--kind", "vector", "--trials", "16", "--shard-size", "8",
            "--scheme", "secded64", "--out", str(out),
        ])
        assert rc == 0
        merged = merge_jsonl(out)
        assert merged.n_trials == 16

    def test_cli_solver_recovery_kind(self, capsys):
        rc = campaign_main([
            "--kind", "solver", "--trials", "4", "--shard-size", "2",
            "--scheme", "sed", "--recovery", "rollback", "--grid", "10",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovery=rollback" in out
