"""ProtectedVector tests: masking invariants, detection/correction per scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.float_bits import f64_to_u64
from repro.errors import ConfigurationError
from repro.protect import ProtectedVector
from repro.protect.base import GROUPS, VECTOR_SCHEMES

SCHEMES = list(VECTOR_SCHEMES)


def flip_bit(vec: ProtectedVector, element: int, bit: int) -> None:
    words = f64_to_u64(vec.raw)
    words[element] ^= np.uint64(1) << np.uint64(bit)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestPerScheme:
    def test_clean_after_encode(self, scheme):
        rng = np.random.default_rng(0)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        assert not vec.detect().any()
        assert vec.check().clean

    def test_masking_noise_is_bounded(self, scheme):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.5, 2.0, 64)
        vec = ProtectedVector(x, scheme)
        rel = np.abs(vec.values() - x) / np.abs(x)
        # Worst case: 8 reserved bits of a 52-bit mantissa.
        assert rel.max() < 2.0**-43

    def test_values_idempotent_after_store(self, scheme):
        """store(values()) must not drift: masked bits are already zero."""
        rng = np.random.default_rng(2)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        first = vec.values()
        vec.store(first)
        assert np.array_equal(vec.values(), first)

    def test_single_bit_flip_detected(self, scheme):
        rng = np.random.default_rng(3)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        flip_bit(vec, 10, 40)
        assert vec.detect().any()

    def test_detection_flags_right_codeword(self, scheme):
        rng = np.random.default_rng(4)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        flip_bit(vec, 17, 33)
        flags = vec.detect()
        group = GROUPS["vector"][scheme]
        assert flags[17 // group]
        assert flags.sum() == 1

    def test_check_without_correct_flags_only(self, scheme):
        rng = np.random.default_rng(5)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        flip_bit(vec, 5, 50)
        snapshot = vec.raw.copy()
        report = vec.check(correct=False)
        assert not report.ok
        assert np.array_equal(vec.raw, snapshot)


@pytest.mark.parametrize("scheme", ["secded64", "secded128", "crc32c"])
class TestCorrection:
    def test_single_flip_corrected_exactly(self, scheme):
        rng = np.random.default_rng(6)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        original = vec.raw.copy()
        for element, bit in [(0, 0), (13, 7), (31, 29), (63, 63)]:
            flip_bit(vec, element, bit)
            report = vec.check()
            assert report.n_corrected == 1, (element, bit)
            assert report.n_uncorrectable == 0
            assert np.array_equal(vec.raw, original)

    def test_flips_in_different_codewords_all_corrected(self, scheme):
        rng = np.random.default_rng(7)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        original = vec.raw.copy()
        group = GROUPS["vector"][scheme]
        elements = [0, group, 2 * group, 3 * group]
        for k, element in enumerate(elements):
            flip_bit(vec, element, 20 + k)
        report = vec.check()
        assert report.n_corrected == len(elements)
        assert np.array_equal(vec.raw, original)


class TestSchemeSpecifics:
    def test_sed_single_flip_not_correctable(self):
        vec = ProtectedVector(np.ones(8), "sed")
        flip_bit(vec, 0, 10)
        report = vec.check()
        assert report.n_uncorrectable == 1

    def test_sed_double_flip_in_codeword_missed(self):
        """Documented SED hole: even numbers of flips are invisible."""
        vec = ProtectedVector(np.ones(8), "sed")
        flip_bit(vec, 0, 10)
        flip_bit(vec, 0, 11)
        assert not vec.detect().any()

    def test_secded_double_flip_detected_not_corrected(self):
        rng = np.random.default_rng(8)
        vec = ProtectedVector(rng.standard_normal(16), "secded64")
        flip_bit(vec, 3, 10)
        flip_bit(vec, 3, 44)
        report = vec.check()
        assert report.n_uncorrectable == 1
        assert report.n_corrected == 0

    def test_crc_two_flips_corrected(self):
        """HD=6 at this length: CRC32C runs as 2EC."""
        rng = np.random.default_rng(9)
        vec = ProtectedVector(rng.standard_normal(16), "crc32c")
        original = vec.raw.copy()
        flip_bit(vec, 0, 20)
        flip_bit(vec, 2, 50)  # same 4-element codeword
        report = vec.check()
        assert report.n_corrected == 1
        assert np.array_equal(vec.raw, original)

    def test_crc_three_flips_detected(self):
        rng = np.random.default_rng(10)
        vec = ProtectedVector(rng.standard_normal(16), "crc32c")
        for bit in (20, 33, 50):
            flip_bit(vec, 1, bit)
        report = vec.check()
        assert report.n_uncorrectable == 1

    def test_reserved_bits_documented(self):
        assert ProtectedVector(np.ones(8), "sed").reserved_bits == 1
        assert ProtectedVector(np.ones(8), "secded64").reserved_bits == 8
        assert ProtectedVector(np.ones(8), "secded128").reserved_bits == 5
        assert ProtectedVector(np.ones(8), "crc32c").reserved_bits == 8


class TestTails:
    @pytest.mark.parametrize("scheme,extra", [("secded128", 1), ("crc32c", 3)])
    def test_tail_elements_sed_protected(self, scheme, extra):
        group = GROUPS["vector"][scheme]
        n = 4 * group + extra
        rng = np.random.default_rng(11)
        vec = ProtectedVector(rng.standard_normal(n), scheme)
        assert vec.tail_size == extra
        assert not vec.detect().any()
        flip_bit(vec, n - 1, 30)
        flags = vec.detect()
        assert flags[-1]
        report = vec.check()
        assert report.n_uncorrectable == 1  # SED tail cannot correct

    def test_codeword_count(self):
        vec = ProtectedVector(np.ones(11), "crc32c")
        assert vec.n_codewords == 2 + 3


class TestAPI:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            ProtectedVector(np.ones(4), "chipkill")

    def test_requires_1d(self):
        with pytest.raises(ConfigurationError):
            ProtectedVector(np.ones((2, 2)), "sed")

    def test_store_shape_mismatch(self):
        vec = ProtectedVector(np.ones(4), "sed")
        with pytest.raises(ValueError):
            vec.store(np.ones(5))

    def test_does_not_alias_input(self):
        x = np.ones(8)
        vec = ProtectedVector(x, "secded64")
        assert np.array_equal(x, np.ones(8))  # input unchanged
        vec.raw[0] = 7.0
        assert x[0] == 1.0

    def test_values_out_parameter(self):
        vec = ProtectedVector(np.arange(8.0), "secded64")
        out = np.empty(8)
        res = vec.values(out=out)
        assert res is out


@given(
    st.sampled_from(SCHEMES),
    st.integers(0, 63),
    st.integers(0, 63),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=80, deadline=None)
def test_any_single_flip_never_silent(scheme, element, bit, seed):
    """Property: no single bit flip anywhere is ever an SDC."""
    rng = np.random.default_rng(seed)
    vec = ProtectedVector(rng.standard_normal(64), scheme)
    flip_bit(vec, element, bit)
    assert vec.detect().any()
