"""repro.dist: partitioner, lockstep solve, shard-death recovery, routing.

The acceptance bars (ISSUE 7):

* the deterministic row partitioner survives its edge cases —
  ``n_rows < n_shards``, a single shard, diagonal (empty-halo) matrices —
  and its five-point halo maps are asserted index by index;
* distributed CG across >= 2 shards converges to the single-process
  solution.  One shard is *bitwise* identical to :func:`cg_solve`; more
  shards re-associate the reductions (each shard sums its partial dot
  product locally, the coordinator sums the partials in shard order), so
  multi-shard parity is tolerance-level (~1e-10 on these tiny systems)
  while remaining bitwise *repeatable* for a fixed shard count;
* a mid-solve shard kill under an escalating
  :class:`~repro.recover.policy.RecoveryPolicy` still completes with a
  correct solution, and the non-escalating paths abort with
  :class:`~repro.errors.ShardDeathError`;
* the ``shard-death`` campaign kind merges bitwise-identically for any
  worker count, and ``repro.serve`` routes large CG jobs to the sharded
  solver without changing job identity or below-threshold behaviour.
"""

import asyncio

import numpy as np
import pytest

import repro
from repro.csr import five_point_operator
from repro.csr.matrix import CSRMatrix
from repro.dist import (
    PartitionPlan,
    distributed_solve,
    partition_matrix,
    partition_rows,
)
from repro.dist.workers import ShardState
from repro.errors import ConfigurationError, Outcome, ShardDeathError
from repro.faults import CampaignTask, run_sharded_campaign
from repro.protect.config import ProtectionConfig
from repro.protect.session import ProtectionSession
from repro.recover.policy import RecoveryPolicy
from repro.solvers import cg_solve

#: Multi-shard solves re-associate the global reductions, so parity with
#: the single-process solver is at rounding level, not bitwise.  1e-10
#: is generous for the ~1e2-unknown systems used here (observed ~1e-13).
PARITY_TOL = 1e-10

#: Recovery paths replay iterations from a checkpoint, so the iterate
#: that finally meets ``eps`` differs more from the fault-free run; the
#: CLI smoke uses the same 1e-8 bar.
RECOVERY_TOL = 1e-8


def make_system(grid=8, seed=0):
    """The campaign-style randomised five-point system."""
    rng = np.random.default_rng(seed)
    shape = (grid, grid)
    matrix = five_point_operator(
        grid, grid, rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape), 0.3
    )
    return matrix, rng.standard_normal(matrix.n_rows)


def diagonal_matrix(n=7):
    values = 2.0 + np.arange(n, dtype=np.float64)
    return CSRMatrix(
        values,
        np.arange(n, dtype=np.uint32),
        np.arange(n + 1, dtype=np.uint32),
        (n, n),
    )


# ---------------------------------------------------------------------------
class TestPartitionRows:
    def test_balanced_ranges_cover_all_rows(self):
        ranges = partition_rows(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_exact_division(self):
        assert partition_rows(8, 2) == [(0, 4), (4, 8)]

    def test_more_shards_than_rows_clamps(self):
        ranges = partition_rows(3, 8)
        assert ranges == [(0, 1), (1, 2), (2, 3)]

    def test_single_shard(self):
        assert partition_rows(5, 1) == [(0, 5)]

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ConfigurationError):
            partition_rows(0, 2)
        with pytest.raises(ConfigurationError):
            partition_rows(4, 0)


class TestPartitionMatrix:
    def test_rejects_non_square(self):
        matrix = CSRMatrix(
            np.ones(2), np.array([0, 1], dtype=np.uint32),
            np.array([0, 1, 2], dtype=np.uint32), (2, 3),
        )
        with pytest.raises(ConfigurationError):
            partition_matrix(matrix, 2)

    def test_diagonal_matrix_has_empty_halos(self):
        plan = partition_matrix(diagonal_matrix(7), 3)
        assert plan.n_shards == 3
        for shard, block in enumerate(plan.blocks):
            assert block.n_halo == 0
            assert block.boundary_idx.size == 0
            assert plan.halo_src_shard[shard].size == 0

    def test_clamps_to_one_row_per_shard(self):
        plan = partition_matrix(diagonal_matrix(3), 8)
        assert plan.n_shards == 3
        assert all(b.n_local == 1 for b in plan.blocks)

    def test_single_shard_has_no_halo(self):
        matrix, _ = make_system(grid=4)
        plan = partition_matrix(matrix, 1)
        assert plan.n_shards == 1
        assert plan.blocks[0].n_halo == 0
        assert plan.blocks[0].matrix.shape == matrix.shape

    def test_five_point_halo_maps(self):
        # grid 4: rows [0,8) / [8,16); the stencil couples row i to i+-4,
        # so each shard's halo is exactly the first stencil-row across
        # the cut, and the owner publishes exactly its cut-facing rows.
        matrix, _ = make_system(grid=4)
        plan = partition_matrix(matrix, 2)
        assert plan.row_ranges == ((0, 8), (8, 16))
        np.testing.assert_array_equal(plan.blocks[0].halo_cols, [8, 9, 10, 11])
        np.testing.assert_array_equal(plan.blocks[1].halo_cols, [4, 5, 6, 7])
        np.testing.assert_array_equal(plan.blocks[0].boundary_idx, [4, 5, 6, 7])
        np.testing.assert_array_equal(plan.blocks[1].boundary_idx, [0, 1, 2, 3])
        np.testing.assert_array_equal(plan.halo_src_shard[0], [1, 1, 1, 1])
        np.testing.assert_array_equal(plan.halo_src_pos[0], [0, 1, 2, 3])

    def test_owner_of_matches_row_ranges(self):
        plan = partition_matrix(make_system(grid=4)[0], 3)
        owners = plan.owner_of(np.arange(plan.n_rows))
        for shard, (lo, hi) in enumerate(plan.row_ranges):
            assert set(owners[lo:hi]) == {shard}

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_local_spmv_is_bitwise_global_spmv(self, n_shards):
        # Column remap preserves within-row nonzero order, so each local
        # matvec accumulates in exactly the global order: bitwise parity.
        matrix, _ = make_system(grid=5, seed=2)
        plan = partition_matrix(matrix, n_shards)
        x = np.random.default_rng(9).standard_normal(matrix.n_rows)
        expected = matrix.matvec(x)
        boundaries = [x[lo:hi][b.boundary_idx]
                      for (lo, hi), b in zip(plan.row_ranges, plan.blocks)]
        for shard, block in enumerate(plan.blocks):
            halo = plan.halo_for(shard, boundaries)
            np.testing.assert_array_equal(halo, x[block.halo_cols])
            local = block.matrix.matvec(
                np.concatenate([plan.slice_vector(x, shard), halo])
            )
            lo, hi = plan.row_ranges[shard]
            np.testing.assert_array_equal(local, expected[lo:hi])

    def test_slice_assemble_roundtrip(self):
        plan = partition_matrix(make_system(grid=4)[0], 3)
        x = np.arange(plan.n_rows, dtype=np.float64)
        slices = [plan.slice_vector(x, s) for s in range(plan.n_shards)]
        np.testing.assert_array_equal(plan.assemble(slices), x)

    def test_plan_is_deterministic(self):
        matrix, _ = make_system(grid=4)
        a, b = partition_matrix(matrix, 3), partition_matrix(matrix, 3)
        assert isinstance(a, PartitionPlan)
        assert a.row_ranges == b.row_ranges
        for ba, bb in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(ba.matrix.values, bb.matrix.values)
            np.testing.assert_array_equal(ba.halo_cols, bb.halo_cols)
            np.testing.assert_array_equal(ba.boundary_idx, bb.boundary_idx)


# ---------------------------------------------------------------------------
class TestShardState:
    """The worker runtime driven in-process (no child processes)."""

    def payload(self, protection=None, grid=4):
        matrix, b = make_system(grid=grid)
        plan = partition_matrix(matrix, 1)
        return matrix, b, {
            "index": 0, "matrix": plan.blocks[0].matrix, "b": b,
            "boundary_idx": plan.blocks[0].boundary_idx,
            "protection": protection,
        }

    def test_residual_round_initialises_r_and_p(self):
        _matrix, b, payload = self.payload()
        state = ShardState(payload)
        reply = state.execute({"cmd": "residual", "halo": np.empty(0)})
        assert reply["status"] == "ok" if "status" in reply else True
        assert reply["rr"] == pytest.approx(float(np.dot(b, b)))
        np.testing.assert_array_equal(state._read(state.r), b)
        np.testing.assert_array_equal(state._read(state.p), b)

    def test_matrix_only_protection_rebinds_unprotected_vectors(self):
        # Regression: with vector_scheme=None the toolkit's write returns
        # a fresh array instead of mutating in place; a handler that
        # fails to rebind leaves r = p = 0 and CG "converges" at once.
        _matrix, b, payload = self.payload(
            protection=ProtectionConfig.matrix_only()
        )
        state = ShardState(payload)
        state.execute({"cmd": "residual", "halo": np.empty(0)})
        np.testing.assert_array_equal(state._read(state.r), b)
        reply = state.execute({"cmd": "spmv", "halo": np.empty(0)})
        assert reply["pw"] > 0.0

    def test_update_and_pbound_recurrences(self):
        matrix, b, payload = self.payload()
        state = ShardState(payload)
        rr = state.execute({"cmd": "residual", "halo": np.empty(0)})["rr"]
        pw = state.execute({"cmd": "spmv", "halo": np.empty(0)})["pw"]
        alpha = rr / pw
        rr_new = state.execute({"cmd": "update", "alpha": alpha, "it": 1})["rr"]
        assert 0.0 < rr_new < rr
        np.testing.assert_allclose(
            state._read(state.x), alpha * b, rtol=0, atol=0
        )
        beta = rr_new / rr
        pb = state.execute({"cmd": "pbound", "beta": beta})["pb"]
        expected_p = state._read(state.r) + beta * b
        np.testing.assert_array_equal(state._read(state.p), expected_p)
        np.testing.assert_array_equal(pb, expected_p[state.boundary_idx])

    def test_finish_reports_shard_info(self):
        _matrix, _b, payload = self.payload(
            protection=ProtectionConfig.resilient()
        )
        state = ShardState(payload)
        state.execute({"cmd": "residual", "halo": np.empty(0)})
        reply = state.execute({"cmd": "finish"})
        assert reply["x"].shape == state.b.shape
        assert "checks" in reply["info"] or reply["info"]

    def test_unknown_command_raises(self):
        _matrix, _b, payload = self.payload()
        with pytest.raises(ValueError):
            ShardState(payload).execute({"cmd": "bogus"})


# ---------------------------------------------------------------------------
class TestDistributedSolve:
    def test_single_shard_is_bitwise_cg_solve(self):
        matrix, b = make_system(grid=6)
        reference = cg_solve(matrix, b, eps=1e-18)
        result = distributed_solve(matrix, b, n_shards=1, eps=1e-18)
        assert result.converged
        assert result.iterations == reference.iterations
        np.testing.assert_array_equal(result.x, reference.x)

    def test_two_shards_match_single_process(self):
        matrix, b = make_system(grid=6)
        reference = cg_solve(matrix, b, eps=1e-18)
        result = distributed_solve(matrix, b, n_shards=2, eps=1e-18)
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < PARITY_TOL
        stats = result.info["distributed"]
        assert stats["n_shards"] == 2
        assert stats["deaths"] == 0 and stats["respawns"] == 0
        assert len(result.info["shards"]) == 2

    def test_three_shards_protected_parity_and_repeatability(self):
        matrix, b = make_system(grid=6)
        reference = cg_solve(matrix, b, eps=1e-18)
        config = ProtectionConfig.resilient()
        first = distributed_solve(
            matrix, b, n_shards=3, protection=config, eps=1e-18
        )
        again = distributed_solve(
            matrix, b, n_shards=3, protection=config, eps=1e-18
        )
        assert first.converged
        assert np.max(np.abs(first.x - reference.x)) < PARITY_TOL
        # Fixed shard count => fixed reduction order => bitwise repeat.
        np.testing.assert_array_equal(first.x, again.x)
        assert first.iterations == again.iterations

    def test_rejects_non_cg_methods(self):
        matrix, b = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            distributed_solve(matrix, b, method="jacobi")

    def test_rejects_sessions(self):
        matrix, b = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            distributed_solve(
                matrix, b, protection=ProtectionSession(ProtectionConfig.deferred())
            )

    def test_rejects_mismatched_rhs(self):
        matrix, _ = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            distributed_solve(matrix, np.ones(3))


class TestShardDeathRecovery:
    def solve_with_kill(self, strategy, kill_iter=4, max_retries=3):
        matrix, b = make_system(grid=6)
        protection = ProtectionConfig(
            correct=False,
            recovery=RecoveryPolicy(
                strategy=strategy, max_retries=max_retries,
                checkpoint_interval=4,
            ),
        )
        result = distributed_solve(
            matrix, b, n_shards=2, protection=protection, eps=1e-18,
            kill_plan=[(kill_iter, 1)],
        )
        reference = cg_solve(matrix, b, eps=1e-18)
        return result, reference

    @pytest.mark.parametrize("strategy", ["rollback", "repopulate"])
    def test_kill_recovers_to_correct_solution(self, strategy):
        result, reference = self.solve_with_kill(strategy)
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < RECOVERY_TOL
        stats = result.info["distributed"]
        assert stats["deaths"] == 1
        assert stats["respawns"] >= 1
        assert stats["recovery"] == result.info["distributed"]["recovery"]

    def test_raise_policy_aborts_with_shard_identity(self):
        with pytest.raises(ShardDeathError) as err:
            self.solve_with_kill("raise")
        assert err.value.shards == (1,)
        assert err.value.iteration == 4

    def test_unprotected_kill_aborts(self):
        matrix, b = make_system(grid=6)
        with pytest.raises(ShardDeathError):
            distributed_solve(
                matrix, b, n_shards=2, eps=1e-18, kill_plan=[(3, 0)],
            )

    def test_exhausted_retry_budget_aborts(self):
        with pytest.raises(ShardDeathError):
            self.solve_with_kill("rollback", max_retries=0)

    def test_cli_smoke_kill_and_verify(self, capsys):
        # The exact command CI runs: kill shard 1 mid-solve, respawn
        # under rollback, assert the merged solution matches reference.
        from repro.dist.__main__ import main

        rc = main(["--grid", "6", "--shards", "2", "--kill-iter", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out and "1 death(s)" in out


# ---------------------------------------------------------------------------
class TestRegistryRouting:
    def test_solve_distributed_keyword(self):
        matrix, b = make_system(grid=5)
        reference = cg_solve(matrix, b, eps=1e-18)
        result = repro.solve(matrix, b, method="cg", distributed=2, eps=1e-18)
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < PARITY_TOL
        assert result.info["distributed"]["n_shards"] == 2

    def test_session_plus_distributed_is_rejected(self):
        matrix, b = make_system(grid=4)
        session = ProtectionSession(ProtectionConfig.deferred())
        with pytest.raises(ConfigurationError):
            repro.solve(matrix, b, protection=session, distributed=2)

    def test_non_cg_distributed_is_rejected(self):
        matrix, b = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            repro.solve(matrix, b, method="jacobi", distributed=2)


# ---------------------------------------------------------------------------
class TestShardDeathCampaign:
    def campaign_task(self):
        return CampaignTask("shard-death", dict(
            matrix=make_system(grid=6)[0],
            b=make_system(grid=6)[1],
            mtbf=12.0, n_shards=2, interval=4,
            recovery=RecoveryPolicy(strategy="rollback", max_retries=5,
                                    checkpoint_interval=4),
            eps=1e-16, max_iters=500,
        ))

    def test_merge_is_bitwise_identical_across_worker_counts(self):
        task = self.campaign_task()
        serial = run_sharded_campaign(task, 2, workers=1, seed=7, shard_size=1)
        pooled = run_sharded_campaign(task, 2, workers=2, seed=7, shard_size=1)
        assert serial.counts == pooled.counts
        assert serial.n_trials == pooled.n_trials == 2
        drop_timing = lambda info: {  # noqa: E731 - tiny local projection
            k: v for k, v in info.items() if not k.startswith("mean_")
        }
        assert drop_timing(serial.info) == drop_timing(pooled.info)
        # Process loss is never silent: every outcome is CLEAN/DETECTED.
        assert set(serial.counts) <= {Outcome.CLEAN, Outcome.DETECTED}
        assert serial.info["injected"] >= serial.info["recovered"]

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignTask("shard-death", {"n_trials": 3})


# ---------------------------------------------------------------------------
class TestServeRouting:
    def run_service(self, jobs, **config):
        from repro.serve.service import ServeConfig, SolveService

        async def main():
            service = SolveService(ServeConfig(**config))
            await service.start()
            submits = [await service.submit(job) for job in jobs]
            records = [await service.result(s["job_id"]) for s in submits]
            events = {
                s["job_id"]: [e["event"] for e in service._events[s["job_id"]]]
                for s in submits
            }
            await service.stop()
            return records, events

        return asyncio.run(main())

    def grid_job(self, **extra):
        job = {
            "matrix": {"kind": "five-point", "grid": 8, "seed": 3},
            "b": {"seed": 1}, "method": "cg", "eps": 1e-12,
            "protection": None, "return_x": True,
        }
        job.update(extra)
        return job

    @pytest.fixture
    def fresh_workers(self, monkeypatch):
        from repro.serve import workers as serve_workers
        from repro.serve.cache import MatrixCache, SessionPool

        monkeypatch.setattr(serve_workers, "CACHE", MatrixCache())
        monkeypatch.setattr(serve_workers, "SESSIONS", SessionPool())
        return serve_workers

    def test_routing_never_changes_job_identity(self):
        from repro.serve.service import job_identity

        # Identity is a pure function of the spec; the dist knobs live
        # in ServeConfig, so the same spec must hash identically no
        # matter how the serving process is configured.
        assert job_identity(self.grid_job()) == job_identity(self.grid_job())

    def test_large_cg_jobs_route_to_the_sharded_solver(self, fresh_workers):
        records, events = self.run_service(
            [self.grid_job()], dist_shards=2, dist_threshold=10,
        )
        record = records[0]
        assert record["status"] == "done" and record["converged"]
        assert events[record["job_id"]] == [
            "accepted", "started", "distributed", "done",
        ]
        dist_events = [e for e in record["events"]
                       if e["event"] == "distributed"]
        assert dist_events[0]["n_shards"] == 2
        assert dist_events[0]["deaths"] == 0

    def test_below_threshold_jobs_are_untouched(self, fresh_workers):
        routed, _ = self.run_service(
            [self.grid_job()], dist_shards=2, dist_threshold=10,
        )
        plain, events = self.run_service(
            [self.grid_job()], dist_shards=2, dist_threshold=4096,
        )
        record = plain[0]
        assert events[record["job_id"]] == ["accepted", "started", "done"]
        assert record["job_id"] == routed[0]["job_id"]
        np.testing.assert_allclose(
            np.asarray(record["x"]), np.asarray(routed[0]["x"]),
            rtol=0, atol=PARITY_TOL,
        )
