"""repro.dist: partitioner, lockstep solve, shard-death recovery, routing.

The acceptance bars (ISSUE 7):

* the deterministic row partitioner survives its edge cases —
  ``n_rows < n_shards``, a single shard, diagonal (empty-halo) matrices —
  and its five-point halo maps are asserted index by index;
* distributed CG across >= 2 shards converges to the single-process
  solution.  One shard is *bitwise* identical to :func:`cg_solve`; more
  shards re-associate the reductions (each shard sums its partial dot
  product locally, the coordinator sums the partials in shard order), so
  multi-shard parity is tolerance-level (~1e-10 on these tiny systems)
  while remaining bitwise *repeatable* for a fixed shard count;
* a mid-solve shard kill under an escalating
  :class:`~repro.recover.policy.RecoveryPolicy` still completes with a
  correct solution, and the non-escalating paths abort with
  :class:`~repro.errors.ShardDeathError`;
* the ``shard-death`` campaign kind merges bitwise-identically for any
  worker count, and ``repro.serve`` routes large CG jobs to the sharded
  solver without changing job identity or below-threshold behaviour.

The ISSUE 8 bars stack on top:

* killing a worker mid-solve under ``RecoveryPolicy(strategy="erasure")``
  yields a solution matching the in-process reference within
  ``RECOVERY_TOL`` with **zero coordinator checkpoints taken** (asserted
  via the recovery stats);
* the shard-death comparison campaign reports erasure time-to-solution
  <= rollback on the same kill plans, measured in *executed* update
  rounds — the deterministic metric (rollback replays its checkpoint
  window, erasure does not; wall time is spawn-noise dominated here);
* a *hung* (not dead) shard surfaces :class:`ShardDeathError` at
  ``round_timeout``, including during the mandatory finish sweep.
"""

import asyncio
import time

import numpy as np
import pytest

import repro
from repro.csr import five_point_operator
from repro.csr.matrix import CSRMatrix
from repro.dist import (
    PartitionPlan,
    distributed_solve,
    encode_partition,
    partition_matrix,
    partition_rows,
)
from repro.dist.workers import ShardState
from repro.errors import ConfigurationError, Outcome, ShardDeathError
from repro.faults import CampaignTask, run_sharded_campaign
from repro.faults.campaign import (
    compare_shard_death_recoveries,
    render_recovery_comparison,
)
from repro.protect.config import ProtectionConfig
from repro.protect.session import ProtectionSession
from repro.recover.erasure import ErasureCodec, erasure_weights
from repro.recover.policy import RECOVERY_STRATEGIES, RecoveryPolicy
from repro.solvers import cg_solve

#: Multi-shard solves re-associate the global reductions, so parity with
#: the single-process solver is at rounding level, not bitwise.  1e-10
#: is generous for the ~1e2-unknown systems used here (observed ~1e-13).
PARITY_TOL = 1e-10

#: Recovery paths replay iterations from a checkpoint, so the iterate
#: that finally meets ``eps`` differs more from the fault-free run; the
#: CLI smoke uses the same 1e-8 bar.
RECOVERY_TOL = 1e-8


def make_system(grid=8, seed=0):
    """The campaign-style randomised five-point system."""
    rng = np.random.default_rng(seed)
    shape = (grid, grid)
    matrix = five_point_operator(
        grid, grid, rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape), 0.3
    )
    return matrix, rng.standard_normal(matrix.n_rows)


def diagonal_matrix(n=7):
    values = 2.0 + np.arange(n, dtype=np.float64)
    return CSRMatrix(
        values,
        np.arange(n, dtype=np.uint32),
        np.arange(n + 1, dtype=np.uint32),
        (n, n),
    )


# ---------------------------------------------------------------------------
class TestPartitionRows:
    def test_balanced_ranges_cover_all_rows(self):
        ranges = partition_rows(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_exact_division(self):
        assert partition_rows(8, 2) == [(0, 4), (4, 8)]

    def test_more_shards_than_rows_clamps(self):
        ranges = partition_rows(3, 8)
        assert ranges == [(0, 1), (1, 2), (2, 3)]

    def test_single_shard(self):
        assert partition_rows(5, 1) == [(0, 5)]

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ConfigurationError):
            partition_rows(0, 2)
        with pytest.raises(ConfigurationError):
            partition_rows(4, 0)


class TestPartitionMatrix:
    def test_rejects_non_square(self):
        matrix = CSRMatrix(
            np.ones(2), np.array([0, 1], dtype=np.uint32),
            np.array([0, 1, 2], dtype=np.uint32), (2, 3),
        )
        with pytest.raises(ConfigurationError):
            partition_matrix(matrix, 2)

    def test_diagonal_matrix_has_empty_halos(self):
        plan = partition_matrix(diagonal_matrix(7), 3)
        assert plan.n_shards == 3
        for shard, block in enumerate(plan.blocks):
            assert block.n_halo == 0
            assert block.boundary_idx.size == 0
            assert plan.halo_src_shard[shard].size == 0

    def test_clamps_to_one_row_per_shard(self):
        plan = partition_matrix(diagonal_matrix(3), 8)
        assert plan.n_shards == 3
        assert all(b.n_local == 1 for b in plan.blocks)

    def test_single_shard_has_no_halo(self):
        matrix, _ = make_system(grid=4)
        plan = partition_matrix(matrix, 1)
        assert plan.n_shards == 1
        assert plan.blocks[0].n_halo == 0
        assert plan.blocks[0].matrix.shape == matrix.shape

    def test_five_point_halo_maps(self):
        # grid 4: rows [0,8) / [8,16); the stencil couples row i to i+-4,
        # so each shard's halo is exactly the first stencil-row across
        # the cut, and the owner publishes exactly its cut-facing rows.
        matrix, _ = make_system(grid=4)
        plan = partition_matrix(matrix, 2)
        assert plan.row_ranges == ((0, 8), (8, 16))
        np.testing.assert_array_equal(plan.blocks[0].halo_cols, [8, 9, 10, 11])
        np.testing.assert_array_equal(plan.blocks[1].halo_cols, [4, 5, 6, 7])
        np.testing.assert_array_equal(plan.blocks[0].boundary_idx, [4, 5, 6, 7])
        np.testing.assert_array_equal(plan.blocks[1].boundary_idx, [0, 1, 2, 3])
        np.testing.assert_array_equal(plan.halo_src_shard[0], [1, 1, 1, 1])
        np.testing.assert_array_equal(plan.halo_src_pos[0], [0, 1, 2, 3])

    def test_owner_of_matches_row_ranges(self):
        plan = partition_matrix(make_system(grid=4)[0], 3)
        owners = plan.owner_of(np.arange(plan.n_rows))
        for shard, (lo, hi) in enumerate(plan.row_ranges):
            assert set(owners[lo:hi]) == {shard}

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_local_spmv_is_bitwise_global_spmv(self, n_shards):
        # Column remap preserves within-row nonzero order, so each local
        # matvec accumulates in exactly the global order: bitwise parity.
        matrix, _ = make_system(grid=5, seed=2)
        plan = partition_matrix(matrix, n_shards)
        x = np.random.default_rng(9).standard_normal(matrix.n_rows)
        expected = matrix.matvec(x)
        boundaries = [x[lo:hi][b.boundary_idx]
                      for (lo, hi), b in zip(plan.row_ranges, plan.blocks)]
        for shard, block in enumerate(plan.blocks):
            halo = plan.halo_for(shard, boundaries)
            np.testing.assert_array_equal(halo, x[block.halo_cols])
            local = block.matrix.matvec(
                np.concatenate([plan.slice_vector(x, shard), halo])
            )
            lo, hi = plan.row_ranges[shard]
            np.testing.assert_array_equal(local, expected[lo:hi])

    def test_slice_assemble_roundtrip(self):
        plan = partition_matrix(make_system(grid=4)[0], 3)
        x = np.arange(plan.n_rows, dtype=np.float64)
        slices = [plan.slice_vector(x, s) for s in range(plan.n_shards)]
        np.testing.assert_array_equal(plan.assemble(slices), x)

    def test_plan_is_deterministic(self):
        matrix, _ = make_system(grid=4)
        a, b = partition_matrix(matrix, 3), partition_matrix(matrix, 3)
        assert isinstance(a, PartitionPlan)
        assert a.row_ranges == b.row_ranges
        for ba, bb in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(ba.matrix.values, bb.matrix.values)
            np.testing.assert_array_equal(ba.halo_cols, bb.halo_cols)
            np.testing.assert_array_equal(ba.boundary_idx, bb.boundary_idx)


# ---------------------------------------------------------------------------
class TestShardState:
    """The worker runtime driven in-process (no child processes)."""

    def payload(self, protection=None, grid=4):
        matrix, b = make_system(grid=grid)
        plan = partition_matrix(matrix, 1)
        return matrix, b, {
            "index": 0, "matrix": plan.blocks[0].matrix, "b": b,
            "boundary_idx": plan.blocks[0].boundary_idx,
            "protection": protection,
        }

    def test_residual_round_initialises_r_and_p(self):
        _matrix, b, payload = self.payload()
        state = ShardState(payload)
        reply = state.execute({"cmd": "residual", "halo": np.empty(0)})
        assert reply["status"] == "ok" if "status" in reply else True
        assert reply["rr"] == pytest.approx(float(np.dot(b, b)))
        np.testing.assert_array_equal(state._read(state.r), b)
        np.testing.assert_array_equal(state._read(state.p), b)

    def test_matrix_only_protection_rebinds_unprotected_vectors(self):
        # Regression: with vector_scheme=None the toolkit's write returns
        # a fresh array instead of mutating in place; a handler that
        # fails to rebind leaves r = p = 0 and CG "converges" at once.
        _matrix, b, payload = self.payload(
            protection=ProtectionConfig.matrix_only()
        )
        state = ShardState(payload)
        state.execute({"cmd": "residual", "halo": np.empty(0)})
        np.testing.assert_array_equal(state._read(state.r), b)
        reply = state.execute({"cmd": "spmv", "halo": np.empty(0)})
        assert reply["pw"] > 0.0

    def test_update_and_pbound_recurrences(self):
        matrix, b, payload = self.payload()
        state = ShardState(payload)
        rr = state.execute({"cmd": "residual", "halo": np.empty(0)})["rr"]
        pw = state.execute({"cmd": "spmv", "halo": np.empty(0)})["pw"]
        alpha = rr / pw
        rr_new = state.execute({"cmd": "update", "alpha": alpha, "it": 1})["rr"]
        assert 0.0 < rr_new < rr
        np.testing.assert_allclose(
            state._read(state.x), alpha * b, rtol=0, atol=0
        )
        beta = rr_new / rr
        pb = state.execute({"cmd": "pbound", "beta": beta})["pb"]
        expected_p = state._read(state.r) + beta * b
        np.testing.assert_array_equal(state._read(state.p), expected_p)
        np.testing.assert_array_equal(pb, expected_p[state.boundary_idx])

    def test_finish_reports_shard_info(self):
        _matrix, _b, payload = self.payload(
            protection=ProtectionConfig.resilient()
        )
        state = ShardState(payload)
        state.execute({"cmd": "residual", "halo": np.empty(0)})
        reply = state.execute({"cmd": "finish"})
        assert reply["x"].shape == state.b.shape
        assert "checks" in reply["info"] or reply["info"]

    def test_unknown_command_raises(self):
        _matrix, _b, payload = self.payload()
        with pytest.raises(ValueError):
            ShardState(payload).execute({"cmd": "bogus"})


# ---------------------------------------------------------------------------
class TestDistributedSolve:
    def test_single_shard_is_bitwise_cg_solve(self):
        matrix, b = make_system(grid=6)
        reference = cg_solve(matrix, b, eps=1e-18)
        result = distributed_solve(matrix, b, n_shards=1, eps=1e-18)
        assert result.converged
        assert result.iterations == reference.iterations
        np.testing.assert_array_equal(result.x, reference.x)

    def test_two_shards_match_single_process(self):
        matrix, b = make_system(grid=6)
        reference = cg_solve(matrix, b, eps=1e-18)
        result = distributed_solve(matrix, b, n_shards=2, eps=1e-18)
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < PARITY_TOL
        stats = result.info["distributed"]
        assert stats["n_shards"] == 2
        assert stats["deaths"] == 0 and stats["respawns"] == 0
        assert len(result.info["shards"]) == 2

    def test_three_shards_protected_parity_and_repeatability(self):
        matrix, b = make_system(grid=6)
        reference = cg_solve(matrix, b, eps=1e-18)
        config = ProtectionConfig.resilient()
        first = distributed_solve(
            matrix, b, n_shards=3, protection=config, eps=1e-18
        )
        again = distributed_solve(
            matrix, b, n_shards=3, protection=config, eps=1e-18
        )
        assert first.converged
        assert np.max(np.abs(first.x - reference.x)) < PARITY_TOL
        # Fixed shard count => fixed reduction order => bitwise repeat.
        np.testing.assert_array_equal(first.x, again.x)
        assert first.iterations == again.iterations

    def test_rejects_non_cg_methods(self):
        matrix, b = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            distributed_solve(matrix, b, method="jacobi")

    def test_rejects_sessions(self):
        matrix, b = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            distributed_solve(
                matrix, b, protection=ProtectionSession(ProtectionConfig.deferred())
            )

    def test_rejects_mismatched_rhs(self):
        matrix, _ = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            distributed_solve(matrix, np.ones(3))


class TestShardDeathRecovery:
    def solve_with_kill(self, strategy, kill_iter=4, max_retries=3):
        matrix, b = make_system(grid=6)
        protection = ProtectionConfig(
            correct=False,
            recovery=RecoveryPolicy(
                strategy=strategy, max_retries=max_retries,
                checkpoint_interval=4,
            ),
        )
        result = distributed_solve(
            matrix, b, n_shards=2, protection=protection, eps=1e-18,
            kill_plan=[(kill_iter, 1)],
        )
        reference = cg_solve(matrix, b, eps=1e-18)
        return result, reference

    @pytest.mark.parametrize("strategy", ["rollback", "repopulate"])
    def test_kill_recovers_to_correct_solution(self, strategy):
        result, reference = self.solve_with_kill(strategy)
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < RECOVERY_TOL
        stats = result.info["distributed"]
        assert stats["deaths"] == 1
        assert stats["respawns"] >= 1
        assert stats["recovery"] == result.info["distributed"]["recovery"]

    def test_raise_policy_aborts_with_shard_identity(self):
        with pytest.raises(ShardDeathError) as err:
            self.solve_with_kill("raise")
        assert err.value.shards == (1,)
        assert err.value.iteration == 4

    def test_unprotected_kill_aborts(self):
        matrix, b = make_system(grid=6)
        with pytest.raises(ShardDeathError):
            distributed_solve(
                matrix, b, n_shards=2, eps=1e-18, kill_plan=[(3, 0)],
            )

    def test_exhausted_retry_budget_aborts(self):
        with pytest.raises(ShardDeathError):
            self.solve_with_kill("rollback", max_retries=0)

    def test_cli_smoke_kill_and_verify(self, capsys):
        # The exact command CI runs: kill shard 1 mid-solve, respawn
        # under rollback, assert the merged solution matches reference.
        from repro.dist.__main__ import main

        rc = main(["--grid", "6", "--shards", "2", "--kill-iter", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out and "1 death(s)" in out


# ---------------------------------------------------------------------------
class TestErasureCodec:
    """The arithmetic core: Vandermonde checksums and reconstruction."""

    def test_weights_row_zero_is_plain_sum(self):
        weights = erasure_weights(4, 2)
        np.testing.assert_array_equal(weights[0], np.ones(4))
        np.testing.assert_array_equal(weights[1], [1.0, 2.0, 3.0, 4.0])

    def test_single_loss_roundtrip_uneven_sizes(self):
        codec = ErasureCodec([4, 3, 2], k=1)
        rng = np.random.default_rng(0)
        slices = [rng.standard_normal(n) for n in codec.sizes]
        checks = {0: codec.encode(slices, 0)}
        for dead in range(3):
            survivors = {s: slices[s] for s in range(3) if s != dead}
            out = codec.reconstruct([dead], survivors, checks)
            np.testing.assert_allclose(out[dead], slices[dead],
                                       rtol=0, atol=1e-12)
            assert out[dead].shape == (codec.sizes[dead],)

    def test_double_loss_recovered_from_two_checksums(self):
        codec = ErasureCodec([3, 3, 3, 2], k=2)
        rng = np.random.default_rng(1)
        slices = [rng.standard_normal(n) for n in codec.sizes]
        checks = {j: codec.encode(slices, j) for j in range(2)}
        out = codec.reconstruct([1, 3], {0: slices[0], 2: slices[2]}, checks)
        np.testing.assert_allclose(out[1], slices[1], rtol=0, atol=1e-12)
        np.testing.assert_allclose(out[3], slices[3], rtol=0, atol=1e-12)

    def test_insufficient_checksums_rejected(self):
        codec = ErasureCodec([2, 2, 2], k=1)
        slices = [np.ones(2)] * 3
        with pytest.raises(ConfigurationError):
            codec.reconstruct([0, 1], {2: slices[2]},
                              {0: codec.encode(slices, 0)})

    def test_wrong_survivor_set_rejected(self):
        codec = ErasureCodec([2, 2], k=1)
        with pytest.raises(ConfigurationError):
            codec.reconstruct([0], {}, {0: np.zeros(2)})

    def test_non_finite_reconstruction_raises_arithmetic(self):
        codec = ErasureCodec([2, 2], k=1)
        with pytest.raises(ArithmeticError):
            codec.reconstruct([0], {1: np.array([np.inf, 0.0])},
                              {0: np.zeros(2)})


class TestEncodePartition:
    """The encoded layout: data plan untouched, checksum blocks exact."""

    def test_data_blocks_match_plain_partition(self):
        matrix, _ = make_system(grid=5, seed=2)
        plain = partition_matrix(matrix, 3)
        eplan = encode_partition(matrix, 3, k=2)
        assert eplan.k == 2 and eplan.n_data == 3
        assert eplan.stripe == max(b.n_local for b in plain.blocks)
        assert eplan.plan.row_ranges == plain.row_ranges
        for encoded, reference in zip(eplan.plan.blocks, plain.blocks):
            np.testing.assert_array_equal(encoded.matrix.values,
                                          reference.matrix.values)
            np.testing.assert_array_equal(encoded.halo_cols,
                                          reference.halo_cols)
            # Boundary publications may widen to cover the checksum
            # shards' reads, but never shrink.
            assert set(reference.boundary_idx) <= set(encoded.boundary_idx)

    def test_encoded_matvec_is_checksum_of_shard_matvecs(self):
        # The invariant the lockstep recurrence relies on: the encoded
        # block applied to the checksum shard's halo equals the weighted
        # sum of the data shards' local matvecs.
        matrix, _ = make_system(grid=5, seed=2)
        eplan = encode_partition(matrix, 3, k=2)
        codec = eplan.codec()
        x = np.random.default_rng(4).standard_normal(matrix.n_rows)
        y = matrix.matvec(x)
        y_slices = [y[lo:hi] for lo, hi in eplan.plan.row_ranges]
        for block in eplan.blocks:
            out = block.matrix.matvec(x[block.halo_cols])
            np.testing.assert_allclose(
                out, codec.encode(y_slices, block.index),
                rtol=1e-12, atol=1e-12,
            )

    def test_erasure_halo_assembles_from_boundaries(self):
        matrix, _ = make_system(grid=4)
        eplan = encode_partition(matrix, 2, k=1)
        x = np.arange(matrix.n_rows, dtype=np.float64)
        boundaries = [
            x[lo:hi][block.boundary_idx]
            for (lo, hi), block in zip(eplan.plan.row_ranges,
                                       eplan.plan.blocks)
        ]
        halo = eplan.halo_for(0, boundaries)
        np.testing.assert_array_equal(halo, x[eplan.blocks[0].halo_cols])


class TestErasurePolicy:
    def test_strategy_registered_and_escalates(self):
        assert "erasure" in RECOVERY_STRATEGIES
        policy = RecoveryPolicy(strategy="erasure", erasure_shards=2)
        assert policy.escalates
        assert policy.erasure_shards == 2

    def test_erasure_shard_count_validated(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(strategy="erasure", erasure_shards=0)


class TestErasureRecovery:
    """ISSUE 8 tentpole acceptance: checkpoint-free shard-death recovery."""

    def solve_with_kill(self, kill_plan, *, n_shards=2, erasure_shards=1,
                        max_retries=3, grid=6):
        matrix, b = make_system(grid=grid)
        protection = ProtectionConfig(
            correct=False,
            recovery=RecoveryPolicy(strategy="erasure",
                                    max_retries=max_retries,
                                    erasure_shards=erasure_shards),
        )
        result = distributed_solve(
            matrix, b, n_shards=n_shards, protection=protection, eps=1e-18,
            kill_plan=kill_plan,
        )
        return result, cg_solve(matrix, b, eps=1e-18)

    def test_data_shard_kill_is_checkpoint_free(self):
        result, reference = self.solve_with_kill([(4, 1)])
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < RECOVERY_TOL
        stats = result.info["distributed"]
        assert stats["recovery"] == "erasure"
        assert stats["deaths"] == 1 and stats["respawns"] >= 1
        assert stats["checkpoints"] == 0  # the mode's defining property
        assert stats["reconstructions"] == 1
        assert stats["fallback_restarts"] == 0
        # No checkpoint window to replay: every executed update round
        # advanced the recurrence.
        assert stats["iters_executed"] == result.iterations

    def test_erasure_shard_kill_needs_no_reconstruction(self):
        # Pool index n_shards is the checksum shard: losing it loses
        # redundancy, not solver state, so it is re-encoded in place.
        result, reference = self.solve_with_kill([(3, 2)])
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < RECOVERY_TOL
        stats = result.info["distributed"]
        assert stats["deaths"] == 1
        assert stats["reconstructions"] == 0
        assert stats["checkpoints"] == 0

    def test_sequential_kills_reconstruct_each_time(self):
        result, reference = self.solve_with_kill([(3, 0), (7, 1)])
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < RECOVERY_TOL
        stats = result.info["distributed"]
        assert stats["deaths"] == 2
        assert stats["reconstructions"] == 2
        assert stats["checkpoints"] == 0

    def test_simultaneous_double_kill_needs_two_checksums(self):
        result, reference = self.solve_with_kill(
            [(4, 0), (4, 2)], n_shards=3, erasure_shards=2,
        )
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < RECOVERY_TOL
        stats = result.info["distributed"]
        assert stats["erasure_shards"] == 2
        assert stats["reconstructions"] == 2
        assert stats["checkpoints"] == 0

    def test_double_kill_exceeds_single_checksum(self):
        with pytest.raises(ShardDeathError):
            self.solve_with_kill([(4, 0), (4, 2)], n_shards=3,
                                 erasure_shards=1)

    def test_exhausted_retry_budget_aborts(self):
        with pytest.raises(ShardDeathError):
            self.solve_with_kill([(4, 1)], max_retries=0)

    def test_rollback_checkpoints_where_erasure_does_not(self):
        erasure, _ = self.solve_with_kill([(4, 1)])
        matrix, b = make_system(grid=6)
        # Kill off the checkpoint cadence so rollback has rounds to
        # replay (a kill landing exactly on a checkpoint replays none).
        rollback = distributed_solve(
            matrix, b, n_shards=2, eps=1e-18, kill_plan=[(6, 1)],
            protection=ProtectionConfig(
                correct=False,
                recovery=RecoveryPolicy(strategy="rollback", max_retries=3,
                                        checkpoint_interval=4),
            ),
        )
        assert rollback.info["distributed"]["checkpoints"] > 0
        assert erasure.info["distributed"]["checkpoints"] == 0
        # Rollback replays its checkpoint window; erasure never replays.
        assert (rollback.info["distributed"]["iters_executed"]
                > rollback.iterations)
        assert (erasure.info["distributed"]["iters_executed"]
                == erasure.iterations)

    def test_cli_smoke_erasure_kill_and_verify(self, capsys):
        # The exact command CI runs for the erasure smoke.
        from repro.dist.__main__ import main

        rc = main(["--grid", "6", "--shards", "2", "--kill-iter", "3",
                   "--recovery", "erasure", "--round-timeout", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out
        assert "+ 1 erasure" in out
        assert "0 checkpoint(s)" in out
        assert "1 reconstruction(s)" in out


class TestShardHangTimeout:
    """ISSUE 8 satellite: a hung (not dead) shard dies at round_timeout.

    The hang injector parks the worker for ~10 minutes without exiting,
    so only the pool's timeout-expiry detection can surface the death —
    the elapsed-time bounds assert it was the timeout, not the hang
    draining.
    """

    def test_hung_shard_surfaces_death_at_round_timeout(self):
        matrix, b = make_system(grid=6)
        start = time.monotonic()
        with pytest.raises(ShardDeathError) as err:
            distributed_solve(matrix, b, n_shards=2, eps=1e-18,
                              hang_plan=[(2, 1)], round_timeout=1.0)
        assert err.value.shards == (1,)
        assert time.monotonic() - start < 30.0

    def test_hang_during_finish_sweep_is_detected(self):
        matrix, b = make_system(grid=6)
        start = time.monotonic()
        with pytest.raises(ShardDeathError) as err:
            distributed_solve(matrix, b, n_shards=2, eps=1e-18,
                              hang_plan=[(-1, 0)], round_timeout=1.0)
        assert err.value.shards == (0,)
        assert time.monotonic() - start < 30.0

    def test_erasure_heals_through_a_hang(self):
        matrix, b = make_system(grid=6)
        protection = ProtectionConfig(
            correct=False,
            recovery=RecoveryPolicy(strategy="erasure", max_retries=3),
        )
        start = time.monotonic()
        result = distributed_solve(
            matrix, b, n_shards=2, protection=protection, eps=1e-18,
            hang_plan=[(3, 1)], round_timeout=2.0,
        )
        reference = cg_solve(matrix, b, eps=1e-18)
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < RECOVERY_TOL
        stats = result.info["distributed"]
        assert stats["deaths"] == 1 and stats["checkpoints"] == 0
        assert time.monotonic() - start < 60.0


class TestRecoveryComparison:
    """ISSUE 8 acceptance: erasure time-to-solution <= rollback.

    Measured in *executed* update rounds on identical kill plans —
    deterministic, unlike wall time, which is spawn-noise dominated at
    smoke scale (docs/distributed.md documents the metric choice).
    """

    def test_erasure_never_slower_than_rollback_on_same_kill_plans(self):
        matrix, b = make_system(grid=6)
        rollback, erasure = compare_shard_death_recoveries(
            matrix, b, ["rollback", "erasure"],
            mtbf=12.0, n_shards=2, max_retries=5, n_trials=2, seed=0,
            eps=1e-16, max_iters=500,
        )
        # Fixed seed + fixed sampling cap => identical kill plans.
        assert rollback.info["injected"] == erasure.info["injected"]
        assert erasure.info["checkpoints"] == 0
        assert rollback.info["checkpoints"] > 0
        assert (erasure.info["mean_iters_executed"]
                <= rollback.info["mean_iters_executed"])
        table = render_recovery_comparison([rollback, erasure])
        assert "rollback" in table and "erasure" in table
        assert "iters_exec" in table


# ---------------------------------------------------------------------------
class TestRegistryRouting:
    def test_solve_distributed_keyword(self):
        matrix, b = make_system(grid=5)
        reference = cg_solve(matrix, b, eps=1e-18)
        result = repro.solve(matrix, b, method="cg", distributed=2, eps=1e-18)
        assert result.converged
        assert np.max(np.abs(result.x - reference.x)) < PARITY_TOL
        assert result.info["distributed"]["n_shards"] == 2

    def test_session_plus_distributed_is_rejected(self):
        matrix, b = make_system(grid=4)
        session = ProtectionSession(ProtectionConfig.deferred())
        with pytest.raises(ConfigurationError):
            repro.solve(matrix, b, protection=session, distributed=2)

    def test_non_cg_distributed_is_rejected(self):
        matrix, b = make_system(grid=4)
        with pytest.raises(ConfigurationError):
            repro.solve(matrix, b, method="jacobi", distributed=2)


# ---------------------------------------------------------------------------
class TestShardDeathCampaign:
    def campaign_task(self):
        return CampaignTask("shard-death", dict(
            matrix=make_system(grid=6)[0],
            b=make_system(grid=6)[1],
            mtbf=12.0, n_shards=2, interval=4,
            recovery=RecoveryPolicy(strategy="rollback", max_retries=5,
                                    checkpoint_interval=4),
            eps=1e-16, max_iters=500,
        ))

    def test_merge_is_bitwise_identical_across_worker_counts(self):
        task = self.campaign_task()
        serial = run_sharded_campaign(task, 2, workers=1, seed=7, shard_size=1)
        pooled = run_sharded_campaign(task, 2, workers=2, seed=7, shard_size=1)
        assert serial.counts == pooled.counts
        assert serial.n_trials == pooled.n_trials == 2
        drop_timing = lambda info: {  # noqa: E731 - tiny local projection
            k: v for k, v in info.items() if not k.startswith("mean_")
        }
        assert drop_timing(serial.info) == drop_timing(pooled.info)
        # Process loss is never silent: every outcome is CLEAN/DETECTED.
        assert set(serial.counts) <= {Outcome.CLEAN, Outcome.DETECTED}
        assert serial.info["injected"] >= serial.info["recovered"]

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignTask("shard-death", {"n_trials": 3})


# ---------------------------------------------------------------------------
class TestServeRouting:
    def run_service(self, jobs, **config):
        from repro.serve.service import ServeConfig, SolveService

        async def main():
            service = SolveService(ServeConfig(**config))
            await service.start()
            submits = [await service.submit(job) for job in jobs]
            records = [await service.result(s["job_id"]) for s in submits]
            events = {
                s["job_id"]: [e["event"] for e in service._events[s["job_id"]]]
                for s in submits
            }
            await service.stop()
            return records, events

        return asyncio.run(main())

    def grid_job(self, **extra):
        job = {
            "matrix": {"kind": "five-point", "grid": 8, "seed": 3},
            "b": {"seed": 1}, "method": "cg", "eps": 1e-12,
            "protection": None, "return_x": True,
        }
        job.update(extra)
        return job

    @pytest.fixture
    def fresh_workers(self, monkeypatch):
        from repro.serve import workers as serve_workers
        from repro.serve.cache import MatrixCache, SessionPool

        monkeypatch.setattr(serve_workers, "CACHE", MatrixCache())
        monkeypatch.setattr(serve_workers, "SESSIONS", SessionPool())
        return serve_workers

    def test_routing_never_changes_job_identity(self):
        from repro.serve.service import job_identity

        # Identity is a pure function of the spec; the dist knobs live
        # in ServeConfig, so the same spec must hash identically no
        # matter how the serving process is configured.
        assert job_identity(self.grid_job()) == job_identity(self.grid_job())

    def test_large_cg_jobs_route_to_the_sharded_solver(self, fresh_workers):
        records, events = self.run_service(
            [self.grid_job()], dist_shards=2, dist_threshold=10,
        )
        record = records[0]
        assert record["status"] == "done" and record["converged"]
        assert events[record["job_id"]] == [
            "accepted", "started", "distributed", "done",
        ]
        dist_events = [e for e in record["events"]
                       if e["event"] == "distributed"]
        assert dist_events[0]["n_shards"] == 2
        assert dist_events[0]["deaths"] == 0

    def test_below_threshold_jobs_are_untouched(self, fresh_workers):
        routed, _ = self.run_service(
            [self.grid_job()], dist_shards=2, dist_threshold=10,
        )
        plain, events = self.run_service(
            [self.grid_job()], dist_shards=2, dist_threshold=4096,
        )
        record = plain[0]
        assert events[record["job_id"]] == ["accepted", "started", "done"]
        assert record["job_id"] == routed[0]["job_id"]
        np.testing.assert_allclose(
            np.asarray(record["x"]), np.asarray(routed[0]["x"]),
            rtol=0, atol=PARITY_TOL,
        )
