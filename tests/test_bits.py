"""Unit tests for the bit-manipulation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bits import (
    MANTISSA_BITS,
    bits_to_lane_masks,
    extract_mantissa_lsbs,
    f64_to_u64,
    fold_parity,
    insert_mantissa_lsbs,
    mask_mantissa_lsbs,
    pack_csr_element_lanes,
    pack_f64_lanes,
    pack_u32_lanes,
    parity64,
    parity_lanes,
    popcount64,
    u64_to_f64,
    unpack_csr_element_lanes,
    unpack_u32_lanes,
)
from repro.bits.popcount import _popcount64_swar

u64s = hnp.arrays(np.uint64, st.integers(1, 64),
                  elements=st.integers(0, 2**64 - 1))


class TestFloatBits:
    def test_view_roundtrip_is_exact(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(257)
        assert np.array_equal(u64_to_f64(f64_to_u64(x)), x)

    def test_view_does_not_copy(self):
        x = np.zeros(4)
        w = f64_to_u64(x)
        w[0] = np.uint64(0x3FF0000000000000)  # bits of 1.0
        assert x[0] == 1.0

    def test_known_bit_pattern(self):
        assert f64_to_u64(np.array([1.0]))[0] == np.uint64(0x3FF0000000000000)
        assert f64_to_u64(np.array([2.0]))[0] == np.uint64(0x4000000000000000)

    @pytest.mark.parametrize("n_bits", [1, 5, 8, 52])
    def test_mask_zeroes_only_lsbs(self, n_bits):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(100)
        masked = mask_mantissa_lsbs(x, n_bits)
        words = f64_to_u64(masked)
        assert np.all(words & np.uint64((1 << n_bits) - 1) == 0)
        # upper bits untouched
        hi = np.uint64(~np.uint64((1 << n_bits) - 1))
        assert np.array_equal(words & hi, f64_to_u64(x) & hi)

    def test_mask_zero_bits_is_identity_no_copy(self):
        x = np.ones(3)
        assert mask_mantissa_lsbs(x, 0) is x

    def test_mask_relative_error_is_tiny(self):
        # 8 LSBs of a 52-bit mantissa: relative error < 2**-44.
        rng = np.random.default_rng(2)
        x = rng.uniform(0.5, 2.0, 1000)
        masked = mask_mantissa_lsbs(x, 8)
        rel = np.abs(masked - x) / np.abs(x)
        assert rel.max() < 2.0**-44

    def test_insert_extract_roundtrip(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(64)
        payload = rng.integers(0, 256, 64).astype(np.uint64)
        insert_mantissa_lsbs(x, payload, 8)
        assert np.array_equal(extract_mantissa_lsbs(x, 8), payload)

    def test_insert_rejects_oversized_payload(self):
        x = np.ones(2)
        with pytest.raises(ValueError):
            insert_mantissa_lsbs(x, np.array([256], dtype=np.uint64), 8)

    def test_bit_range_validation(self):
        x = np.ones(2)
        with pytest.raises(ValueError):
            mask_mantissa_lsbs(x, MANTISSA_BITS + 1)
        with pytest.raises(ValueError):
            extract_mantissa_lsbs(x, 0)


class TestPopcount:
    def test_popcount_known_values(self):
        w = np.array([0, 1, 3, 0xFF, 2**64 - 1], dtype=np.uint64)
        assert np.array_equal(popcount64(w), [0, 1, 2, 8, 64])

    @given(u64s)
    @settings(max_examples=50, deadline=None)
    def test_swar_matches_bitwise_count(self, w):
        assert np.array_equal(_popcount64_swar(w), np.bitwise_count(w))

    @given(u64s)
    @settings(max_examples=50, deadline=None)
    def test_parity_matches_python(self, w):
        expected = [bin(int(x)).count("1") & 1 for x in w]
        assert np.array_equal(parity64(w), expected)

    def test_parity_lanes_equals_concat_parity(self):
        rng = np.random.default_rng(4)
        lanes = rng.integers(0, 2**63, (20, 3)).astype(np.uint64)
        got = parity_lanes(lanes)
        expected = [
            (sum(bin(int(x)).count("1") for x in row) & 1) for row in lanes
        ]
        assert np.array_equal(got, expected)

    def test_fold_parity_is_xor_reduce(self):
        lanes = np.array([[1, 2, 4], [7, 7, 7]], dtype=np.uint64)
        assert np.array_equal(fold_parity(lanes), [7, 7])


class TestPacking:
    def test_csr_element_roundtrip(self):
        rng = np.random.default_rng(5)
        v = rng.standard_normal(33)
        y = rng.integers(0, 2**24, 33).astype(np.uint32)
        lanes = pack_csr_element_lanes(v, y)
        v2, y2 = unpack_csr_element_lanes(lanes)
        assert np.array_equal(v2, v)
        assert np.array_equal(y2, y)

    def test_csr_element_lane_layout(self):
        lanes = pack_csr_element_lanes(np.array([1.0]), np.array([5], np.uint32))
        assert lanes[0, 0] == np.uint64(0x3FF0000000000000)
        assert lanes[0, 1] == np.uint64(5)

    def test_csr_element_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack_csr_element_lanes(np.zeros(3), np.zeros(4, np.uint32))

    @pytest.mark.parametrize("group", [1, 2, 4, 8])
    def test_u32_roundtrip(self, group):
        rng = np.random.default_rng(6)
        entries = rng.integers(0, 2**28, 8 * group).astype(np.uint32)
        lanes = pack_u32_lanes(entries, group)
        assert lanes.shape == (8, (group + 1) // 2)
        assert np.array_equal(unpack_u32_lanes(lanes, group), entries)

    def test_u32_bit_placement(self):
        lanes = pack_u32_lanes(np.array([1, 2], dtype=np.uint32), 2)
        assert lanes[0, 0] == np.uint64(1) | (np.uint64(2) << np.uint64(32))

    def test_u32_divisibility_check(self):
        with pytest.raises(ValueError):
            pack_u32_lanes(np.zeros(3, np.uint32), 2)

    def test_f64_lanes_roundtrip(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(12)
        lanes = pack_f64_lanes(x, 4)
        assert lanes.shape == (3, 4)
        assert np.array_equal(u64_to_f64(lanes.reshape(-1)), x)

    def test_bits_to_lane_masks(self):
        masks = bits_to_lane_masks([0, 63, 64, 95], 2)
        assert masks[0] == np.uint64(1) | (np.uint64(1) << np.uint64(63))
        assert masks[1] == np.uint64(1) | (np.uint64(1) << np.uint64(31))

    def test_bits_to_lane_masks_out_of_range(self):
        with pytest.raises(ValueError):
            bits_to_lane_masks([128], 2)
