"""64-bit-index CSR protection tests (§V.B extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.errors import ConfigurationError
from repro.protect import ProtectedCSRElements64, ProtectedRowPointer64

ELEMENT_SCHEMES = ["sed", "secded", "crc32c"]
ROWPTR_SCHEMES = ["sed", "secded", "crc32c"]


def make64(nx=6, ny=5, seed=0, col_offset=0):
    """A TeaLeaf operator recast with uint64 indices (optionally shifted
    beyond the 32-bit range to prove the extension is real)."""
    rng = np.random.default_rng(seed)
    op = five_point_operator(
        nx, ny, rng.uniform(0.5, 2.0, (ny, nx)), rng.uniform(0.5, 2.0, (ny, nx)), 0.3
    )
    colidx = op.colidx.astype(np.uint64) + np.uint64(col_offset)
    rowptr = op.rowptr.astype(np.uint64)
    n_cols = op.n_cols + col_offset
    return op.values.copy(), colidx, rowptr, n_cols


@pytest.mark.parametrize("scheme", ELEMENT_SCHEMES)
class TestElements64:
    def test_clean_after_encode(self, scheme):
        values, colidx, rowptr, n_cols = make64()
        prot = ProtectedCSRElements64(values, colidx, rowptr, n_cols, scheme)
        assert not prot.detect().any()
        assert prot.check().clean

    def test_beyond_32bit_columns(self, scheme):
        """The whole point: column indices above 2**32."""
        offset = 2**40
        values, colidx, rowptr, n_cols = make64(col_offset=offset)
        pristine = colidx.copy()  # the container aliases and encodes in place
        prot = ProtectedCSRElements64(values, colidx, rowptr, n_cols, scheme)
        assert not prot.detect().any()
        assert np.array_equal(prot.colidx_clean(), pristine)

    def test_value_flip_detected(self, scheme):
        values, colidx, rowptr, n_cols = make64()
        prot = ProtectedCSRElements64(values, colidx, rowptr, n_cols, scheme)
        f64_to_u64(prot.values)[9] ^= np.uint64(1) << np.uint64(50)
        assert prot.detect().any()

    def test_index_flip_detected(self, scheme):
        values, colidx, rowptr, n_cols = make64(col_offset=2**40)
        prot = ProtectedCSRElements64(values, colidx, rowptr, n_cols, scheme)
        prot.colidx[9] ^= np.uint64(1) << np.uint64(40)
        assert prot.detect().any()


@pytest.mark.parametrize("scheme", ["secded", "crc32c"])
class TestElements64Correction:
    def test_single_flip_corrected(self, scheme):
        values, colidx, rowptr, n_cols = make64(col_offset=2**40)
        prot = ProtectedCSRElements64(values, colidx, rowptr, n_cols, scheme)
        vals0, idx0 = prot.values.copy(), prot.colidx.copy()
        for elem, bit in [(0, 3), (20, 63), (100, 41)]:
            f64_to_u64(prot.values)[elem] ^= np.uint64(1) << np.uint64(bit)
            report = prot.check()
            assert report.n_corrected == 1, (elem, bit)
            assert np.array_equal(prot.values, vals0)
        prot.colidx[33] ^= np.uint64(1) << np.uint64(17)
        assert prot.check().n_corrected == 1
        assert np.array_equal(prot.colidx, idx0)

    def test_crc_two_flips_in_row(self, scheme):
        if scheme != "crc32c":
            pytest.skip("pair correction is a CRC property")
        values, colidx, rowptr, n_cols = make64()
        prot = ProtectedCSRElements64(values, colidx, rowptr, n_cols, "crc32c")
        vals0 = prot.values.copy()
        f64_to_u64(prot.values)[10] ^= np.uint64(1) << np.uint64(5)
        f64_to_u64(prot.values)[12] ^= np.uint64(1) << np.uint64(9)
        report = prot.check()
        assert report.n_corrected == 1
        assert np.array_equal(prot.values, vals0)


class TestElements64Limits:
    def test_secded_column_limit(self):
        values = np.ones(4)
        colidx = np.full(4, (1 << 55), dtype=np.uint64)
        rowptr = np.array([0, 4], np.uint64)
        with pytest.raises(ConfigurationError):
            ProtectedCSRElements64(values, colidx, rowptr, (1 << 55) + 1, "secded")

    def test_crc_needs_four_per_row(self):
        values = np.ones(2)
        colidx = np.zeros(2, np.uint64)
        rowptr = np.array([0, 2], np.uint64)
        with pytest.raises(ConfigurationError):
            ProtectedCSRElements64(values, colidx, rowptr, 4, "crc32c")

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            ProtectedCSRElements64(
                np.ones(1), np.zeros(1, np.uint64), np.array([0, 1], np.uint64),
                4, "secded128",
            )


@pytest.mark.parametrize("scheme", ROWPTR_SCHEMES)
class TestRowPointer64:
    def test_clean_roundtrip(self, scheme):
        ptr = (np.arange(65, dtype=np.uint64) * 5) + np.uint64(2**40)
        ptr[0] = 0
        prot = ProtectedRowPointer64(ptr, scheme)
        assert not prot.detect().any()
        assert np.array_equal(prot.clean(), ptr)

    def test_flip_detected(self, scheme):
        ptr = np.arange(64, dtype=np.uint64) * 5
        prot = ProtectedRowPointer64(ptr, scheme)
        prot.raw[10] ^= np.uint64(1) << np.uint64(33)
        assert prot.detect().any()

    def test_original_not_aliased(self, scheme):
        ptr = np.arange(64, dtype=np.uint64) * 5
        snap = ptr.copy()
        ProtectedRowPointer64(ptr, scheme)
        assert np.array_equal(ptr, snap)


@pytest.mark.parametrize("scheme", ["secded", "crc32c"])
class TestRowPointer64Correction:
    def test_single_flip_corrected(self, scheme):
        ptr = (np.arange(64, dtype=np.uint64) * 7) + np.uint64(2**45)
        ptr[0] = 0
        prot = ProtectedRowPointer64(ptr, scheme)
        raw0 = prot.raw.copy()
        for entry, bit in [(0, 0), (13, 47), (63, 55)]:
            prot.raw[entry] ^= np.uint64(1) << np.uint64(bit)
            report = prot.check()
            assert report.n_corrected == 1, (entry, bit)
            assert np.array_equal(prot.raw, raw0)

    def test_tail_sed_fallback(self, scheme):
        if scheme != "crc32c":
            pytest.skip("secded here is per-entry: no tail")
        ptr = np.arange(10, dtype=np.uint64)  # 10 % 4 = 2-entry tail
        prot = ProtectedRowPointer64(ptr, "crc32c")
        assert prot.tail_size == 2
        prot.raw[9] ^= np.uint64(1) << np.uint64(8)
        report = prot.check()
        assert report.n_uncorrectable == 1

    def test_value_limit(self, scheme):
        with pytest.raises(ConfigurationError):
            ProtectedRowPointer64(np.array([1 << 56], np.uint64), scheme)


@given(
    st.sampled_from(ELEMENT_SCHEMES),
    st.integers(0, 149),
    st.integers(0, 127),
)
@settings(max_examples=60, deadline=None)
def test_any_single_flip_never_silent_64(scheme, element, bit):
    values, colidx, rowptr, n_cols = make64(col_offset=2**40)
    prot = ProtectedCSRElements64(values, colidx, rowptr, n_cols, scheme)
    if bit < 64:
        f64_to_u64(prot.values)[element] ^= np.uint64(1) << np.uint64(bit)
    else:
        prot.colidx[element] ^= np.uint64(1) << np.uint64(bit - 64)
    assert prot.detect().any()
