"""Tests for the extension surface: ProtectedOperator (any solver
protected), Matrix Market I/O, CRC nECmED modes, scipy interop, CLI."""

import io

import numpy as np
import pytest

from repro.bits.float_bits import f64_to_u64
from repro.csr import csr_from_dense, five_point_operator
from repro.csr.io import read_matrix_market, write_matrix_market
from repro.errors import ConfigurationError, DetectedUncorrectableError
from repro.protect import (
    CheckPolicy,
    ProtectedCSRMatrix,
    ProtectedOperator,
    ProtectedVector,
)
from repro.protect.csr_elements import ProtectedCSRElements
from repro.solvers import cg_solve, chebyshev_solve, jacobi_solve, ppcg_solve
from repro.solvers.chebyshev import estimate_eigenvalue_bounds


def make_system(nx=8, ny=7, seed=0):
    rng = np.random.default_rng(seed)
    A = five_point_operator(
        nx, ny, rng.uniform(0.5, 2.0, (ny, nx)), rng.uniform(0.5, 2.0, (ny, nx)), 0.4
    )
    x_true = rng.standard_normal(nx * ny)
    return A, A.matvec(x_true), x_true


class TestProtectedOperator:
    def test_cg_via_operator(self):
        A, b, x_true = make_system()
        op = ProtectedOperator(ProtectedCSRMatrix(A, "secded64", "secded64"))
        res = cg_solve(op, b, eps=1e-24)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_jacobi_via_operator(self):
        A, b, x_true = make_system()
        op = ProtectedOperator(ProtectedCSRMatrix(A, "secded64", "secded64"))
        res = jacobi_solve(op, b, eps=1e-24, max_iters=5000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_chebyshev_via_operator(self):
        A, b, x_true = make_system()
        lo, hi = estimate_eigenvalue_bounds(A, iters=40)
        op = ProtectedOperator(ProtectedCSRMatrix(A, "crc32c", "crc32c"))
        res = chebyshev_solve(op, b, eig_min=lo, eig_max=hi,
                              eps=1e-24, max_iters=3000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_ppcg_via_operator(self):
        A, b, x_true = make_system()
        bounds = estimate_eigenvalue_bounds(A, iters=40)
        op = ProtectedOperator(ProtectedCSRMatrix(A, "secded64", "sed"))
        res = ppcg_solve(op, b, eps=1e-24, eig_bounds=bounds)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)

    def test_operator_corrects_in_flight(self):
        A, b, x_true = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        policy = CheckPolicy(interval=1, correct=True)
        op = ProtectedOperator(pmat, policy)
        f64_to_u64(pmat.values)[12] ^= np.uint64(1) << np.uint64(41)
        res = cg_solve(op, b, eps=1e-24)
        assert policy.stats.corrected == 1
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_operator_raises_on_sed_due(self):
        A, b, _ = make_system()
        pmat = ProtectedCSRMatrix(A, "sed", "sed")
        op = ProtectedOperator(pmat)
        pmat.values[0] = 42.0
        with pytest.raises(DetectedUncorrectableError):
            cg_solve(op, b, eps=1e-24)

    def test_scipy_interop(self):
        scipy_linalg = pytest.importorskip("scipy.sparse.linalg")
        A, b, x_true = make_system()
        op = ProtectedOperator(ProtectedCSRMatrix(A, "secded64", "secded64"))
        x, info = scipy_linalg.cg(op.to_scipy(), b, rtol=1e-12)
        assert info == 0
        assert np.allclose(x, x_true, atol=1e-6)

    def test_end_of_step_sweep(self):
        A, b, _ = make_system()
        policy = CheckPolicy(interval=50, correct=False)
        op = ProtectedOperator(ProtectedCSRMatrix(A, "secded64", "sed"), policy)
        cg_solve(op, b, eps=1e-24)
        checks_before = policy.stats.full_checks
        op.end_of_step()
        assert policy.stats.full_checks == checks_before + 1


class TestMatrixMarketIO:
    def test_roundtrip(self):
        A, _, _ = make_system()
        buf = io.StringIO()
        write_matrix_market(A, buf)
        back = read_matrix_market(buf.getvalue())
        assert back.shape == A.shape
        assert np.allclose(back.to_dense(), A.to_dense())

    def test_read_symmetric(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
2 2 3
1 1 4.0
2 1 1.0
2 2 5.0
"""
        mat = read_matrix_market(text)
        dense = mat.to_dense()
        assert np.allclose(dense, [[4.0, 1.0], [1.0, 5.0]])

    def test_read_pattern(self):
        text = """%%MatrixMarket matrix coordinate pattern general
2 3 2
1 2
2 3
"""
        mat = read_matrix_market(text)
        assert mat.to_dense()[0, 1] == 1.0
        assert mat.to_dense()[1, 2] == 1.0

    def test_comments_and_blank_lines_skipped(self):
        text = """%%MatrixMarket matrix coordinate real general
% a comment

2 2 1
1 1 3.5
"""
        assert read_matrix_market(text).to_dense()[0, 0] == 3.5

    def test_bad_banner(self):
        with pytest.raises(ValueError):
            read_matrix_market("%%NotMatrixMarket nope\n1 1 0\n")

    def test_unsupported_layout(self):
        with pytest.raises(ValueError):
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n1.0\n")

    def test_truncated_data(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(ValueError):
            read_matrix_market(text)

    def test_file_roundtrip(self, tmp_path):
        A = csr_from_dense(np.array([[1.0, 0.0], [2.0, 3.0]]))
        path = tmp_path / "m.mtx"
        write_matrix_market(A, path)
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), A.to_dense())

    def test_protected_load_pipeline(self):
        """The downstream story: load .mtx -> protect -> solve."""
        rng = np.random.default_rng(3)
        dense = np.diag(rng.uniform(2.0, 4.0, 12))
        dense[0, 1] = dense[1, 0] = 0.3
        A = csr_from_dense(dense)
        buf = io.StringIO()
        write_matrix_market(A, buf)
        loaded = read_matrix_market(buf.getvalue())
        op = ProtectedOperator(ProtectedCSRMatrix(loaded, "secded64", "secded64"))
        b = rng.standard_normal(12)
        res = cg_solve(op, b, eps=1e-24)
        assert res.converged


class TestCRCModes:
    def _elements(self, mode):
        rng = np.random.default_rng(4)
        op = five_point_operator(
            6, 5, rng.uniform(0.5, 2.0, (5, 6)), rng.uniform(0.5, 2.0, (5, 6)), 0.3
        )
        return ProtectedCSRElements(
            op.values.copy(), op.colidx.copy(), op.rowptr, op.n_cols,
            "crc32c", crc_mode=mode,
        )

    def test_5ed_detects_only(self):
        prot = self._elements("5ED")
        f64_to_u64(prot.values)[7] ^= np.uint64(1) << np.uint64(20)
        report = prot.check()
        assert report.n_uncorrectable == 1
        assert report.n_corrected == 0

    def test_1ec4ed_corrects_one_not_two(self):
        prot = self._elements("1EC4ED")
        vals0 = prot.values.copy()
        f64_to_u64(prot.values)[7] ^= np.uint64(1) << np.uint64(20)
        assert prot.check().n_corrected == 1
        assert np.array_equal(prot.values, vals0)
        f64_to_u64(prot.values)[7] ^= np.uint64(1) << np.uint64(20)
        f64_to_u64(prot.values)[8] ^= np.uint64(1) << np.uint64(30)
        report = prot.check()
        assert report.n_uncorrectable == 1

    def test_2ec3ed_corrects_two(self):
        prot = self._elements("2EC3ED")
        vals0 = prot.values.copy()
        f64_to_u64(prot.values)[7] ^= np.uint64(1) << np.uint64(20)
        f64_to_u64(prot.values)[8] ^= np.uint64(1) << np.uint64(30)
        assert prot.check().n_corrected == 1
        assert np.array_equal(prot.values, vals0)

    def test_vector_mode(self):
        rng = np.random.default_rng(5)
        vec = ProtectedVector(rng.standard_normal(16), "crc32c", crc_mode="5ED")
        f64_to_u64(vec.raw)[2] ^= np.uint64(1) << np.uint64(30)
        report = vec.check()
        assert report.n_uncorrectable == 1

    def test_invalid_mode(self):
        with pytest.raises((ValueError, ConfigurationError)):
            ProtectedVector(np.ones(8), "crc32c", crc_mode="9EC")


class TestCLI:
    def test_anchors_command(self, capsys):
        from repro.__main__ import main

        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "broadwell" in out and "0.300" in out

    def test_tealeaf_command(self, capsys):
        from repro.__main__ import main

        assert main(["tealeaf", "--grid", "16", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "field summary" in out

    def test_tealeaf_protected_command(self, capsys):
        from repro.__main__ import main

        assert main([
            "tealeaf", "--grid", "16", "--steps", "1", "--protect",
            "--scheme", "sed", "--interval", "4",
        ]) == 0
        assert "field summary" in capsys.readouterr().out

    def test_campaign_command(self, capsys):
        from repro.__main__ import main

        assert main(["campaign", "--trials", "10"]) == 0
        out = capsys.readouterr().out
        # Routed through the guarantee-matrix sweep preset: the rendered
        # grid carries per-scheme sdc columns.
        assert "sdc=" in out and "secded64" in out and "Guarantee matrix" in out
