"""Randomised-layout fuzzing of the SECDED engine and core invariants.

The concrete profiles are tested exhaustively elsewhere; here hypothesis
builds *arbitrary* layouts (random codeword subsets, random check-slot
placement, 1-4 lanes) and asserts the SECDED contract holds for all of
them — the engine's generality is what makes the COO/64-bit extensions
one-liners.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.crc32c import crc32c_table, crc32c_zero_operator, TABLE
from repro.ecc.hamming import SECDEDCode, _min_syndrome_bits
from repro.ecc.registry import FIGURE_ORDER, SCHEMES, scheme_info
from repro.errors import Outcome


@st.composite
def random_layouts(draw):
    """(n_lanes, codeword positions, check positions) with a valid budget."""
    n_lanes = draw(st.integers(1, 3))
    n_bits = 64 * n_lanes
    size = draw(st.integers(16, min(n_bits, 140)))
    positions = draw(
        st.lists(st.integers(0, n_bits - 1), min_size=size, max_size=size,
                 unique=True)
    )
    m = _min_syndrome_bits(len(positions))
    n_check = draw(st.integers(m + 1, min(m + 4, len(positions) - 1)))
    check = draw(st.permutations(positions))[:n_check]
    return n_lanes, sorted(positions), check


@given(random_layouts(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_random_layout_secded_contract(layout, seed):
    """Encode->clean; any single flip corrected; any double flip flagged."""
    n_lanes, positions, check = layout
    code = SECDEDCode(n_lanes, positions, check, name="fuzz")
    rng = np.random.default_rng(seed)
    lanes = rng.integers(0, 2**63, (1, n_lanes)).astype(np.uint64)
    keep = np.zeros(n_lanes, dtype=np.uint64)
    for p in code.data_positions:
        keep[p // 64] |= np.uint64(1) << np.uint64(p % 64)
    lanes &= keep
    code.encode(lanes)
    assert not code.detect(lanes).any()
    original = lanes.copy()

    covered = code.data_positions + code.syndrome_slots + [code.parity_slot]
    pos = covered[int(rng.integers(0, len(covered)))]
    lanes[0, pos // 64] ^= np.uint64(1) << np.uint64(pos % 64)
    report = code.check_and_correct(lanes)
    assert report.n_corrected == 1
    assert np.array_equal(lanes, original)

    a, b = rng.choice(len(covered), size=2, replace=False)
    for p in (covered[a], covered[b]):
        lanes[0, p // 64] ^= np.uint64(1) << np.uint64(p % 64)
    report = code.check_and_correct(lanes)
    assert report.n_uncorrectable == 1


class TestMinSyndromeBits:
    @pytest.mark.parametrize("n_total,expected", [
        (2, 1), (3, 2), (4, 2), (5, 3), (64, 6), (65, 7), (96, 7),
        (128, 7), (129, 8),
    ])
    def test_values(self, n_total, expected):
        assert _min_syndrome_bits(n_total) == expected

    def test_budget_identity(self):
        """2**m >= n_total guarantees enough non-power-of-two columns."""
        for n_total in range(2, 300):
            m = _min_syndrome_bits(n_total)
            assert (1 << m) - 1 - m >= n_total - m - 1


class TestCRCZeroOperator:
    def test_matches_appending_zeros(self):
        data = b"hello world"
        # Raw-register arithmetic: crc_raw(data || 0^k) == Z^k(crc_raw(data)).
        raw = crc32c_table(data) ^ 0xFFFFFFFF  # undo xorout
        advanced = crc32c_zero_operator(raw, 5)
        direct = crc32c_table(data + bytes(5)) ^ 0xFFFFFFFF
        assert advanced == direct

    def test_vector_form(self):
        states = np.array([0, 1, 0xFFFFFFFF], dtype=np.uint32)
        out = crc32c_zero_operator(states, 3)
        for i, s in enumerate(states):
            assert out[i] == crc32c_zero_operator(int(s), 3)

    def test_table_is_linear(self):
        """CRC tables are GF(2)-linear: T[a^b] = T[a]^T[b]."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = rng.integers(0, 256, 2)
            assert TABLE[a ^ b] == TABLE[a] ^ TABLE[b]
        assert TABLE[0] == 0


class TestRegistry:
    def test_figure_order_matches_paper(self):
        assert list(FIGURE_ORDER) == ["sed", "secded64", "secded128", "crc32c"]

    def test_scheme_metadata(self):
        assert scheme_info("sed").corrects == 0
        assert scheme_info("secded64").corrects == 1
        assert scheme_info("crc32c").detects == 5
        assert scheme_info("none").check_bits == 0

    def test_unknown_scheme_lists_choices(self):
        with pytest.raises(KeyError, match="crc32c"):
            scheme_info("reed-solomon")

    def test_all_schemes_have_summaries(self):
        for info in SCHEMES.values():
            assert info.summary


class TestOutcomeTaxonomy:
    def test_sdc_classification(self):
        assert Outcome.SILENT.is_sdc
        assert Outcome.MISCORRECTED.is_sdc
        assert not Outcome.CORRECTED.is_sdc
        assert not Outcome.DETECTED.is_sdc

    def test_detected_classification(self):
        assert Outcome.CORRECTED.is_detected
        assert Outcome.DETECTED.is_detected
        assert Outcome.BOUNDS.is_detected
        assert not Outcome.SILENT.is_detected
        assert not Outcome.CLEAN.is_detected
