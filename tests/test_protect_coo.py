"""COO protection tests (the prior-work format surface)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.csr.coo import COOMatrix
from repro.errors import BoundsViolationError, ConfigurationError
from repro.protect import ProtectedCOOElements, ProtectedCOOMatrix

SCHEMES = ["sed", "secded128", "crc32c"]


def make_coo(nx=6, ny=5, seed=0):
    rng = np.random.default_rng(seed)
    csr = five_point_operator(
        nx, ny, rng.uniform(0.5, 2.0, (ny, nx)), rng.uniform(0.5, 2.0, (ny, nx)), 0.3
    )
    return COOMatrix.from_csr(csr), csr


class TestCOOMatrix:
    def test_roundtrip_csr(self):
        coo, csr = make_coo()
        assert np.allclose(coo.to_csr().to_dense(), csr.to_dense())

    def test_matvec_matches_csr(self):
        coo, csr = make_coo()
        x = np.random.default_rng(1).standard_normal(csr.n_cols)
        assert np.allclose(coo.matvec(x), csr.matvec(x))

    def test_duplicates_accumulate(self):
        coo = COOMatrix([0, 0], [1, 1], [2.0, 3.0], (1, 2))
        assert coo.to_dense()[0, 1] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            COOMatrix([5], [0], [1.0], (2, 2))
        with pytest.raises(ValueError):
            COOMatrix([0], [0, 1], [1.0], (2, 2))


@pytest.mark.parametrize("scheme", SCHEMES)
class TestProtectedCOO:
    def test_clean_after_encode(self, scheme):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        assert not prot.detect_any()
        assert prot.check_all()["coo_elements"].clean

    def test_clean_indices_roundtrip(self, scheme):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        assert np.array_equal(prot.elements.rowidx_clean(), coo.rowidx)
        assert np.array_equal(prot.elements.colidx_clean(), coo.colidx)

    def test_matvec_exact(self, scheme):
        coo, csr = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        x = np.random.default_rng(2).standard_normal(csr.n_cols)
        assert np.array_equal(prot.matvec_unchecked(x), coo.matvec(x))

    def test_value_flip_detected(self, scheme):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        f64_to_u64(prot.values)[7] ^= np.uint64(1) << np.uint64(33)
        assert prot.detect_any()

    def test_rowidx_flip_detected(self, scheme):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        prot.rowidx[3] ^= np.uint32(8)
        assert prot.detect_any()

    def test_colidx_flip_detected(self, scheme):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        prot.colidx[3] ^= np.uint32(2)
        assert prot.detect_any()


@pytest.mark.parametrize("scheme", ["secded128", "crc32c"])
class TestCOOCorrection:
    def test_single_flip_corrected(self, scheme):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        vals0 = prot.values.copy()
        rows0, cols0 = prot.rowidx.copy(), prot.colidx.copy()
        for elem, bit in [(0, 5), (17, 60), (40, 0)]:
            f64_to_u64(prot.values)[elem] ^= np.uint64(1) << np.uint64(bit)
            report = prot.check_all()["coo_elements"]
            assert report.n_corrected == 1, (elem, bit)
            assert np.array_equal(prot.values, vals0)
        prot.rowidx[9] ^= np.uint32(1) << np.uint32(4)
        prot.check_all()
        assert np.array_equal(prot.rowidx, rows0)
        assert np.array_equal(prot.colidx, cols0)

    def test_checksum_region_flip_corrected(self, scheme):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, scheme)
        rows0 = prot.rowidx.copy()
        prot.rowidx[0] ^= np.uint32(1) << np.uint32(28)
        report = prot.check_all()["coo_elements"]
        assert report.n_corrected == 1
        assert np.array_equal(prot.rowidx, rows0)


class TestCOOSpecifics:
    def test_crc_pairs_two_flips_corrected(self):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, "crc32c")
        vals0 = prot.values.copy()
        f64_to_u64(prot.values)[0] ^= np.uint64(1) << np.uint64(10)
        f64_to_u64(prot.values)[1] ^= np.uint64(1) << np.uint64(44)
        report = prot.check_all()["coo_elements"]
        assert report.n_corrected == 1  # one pair codeword
        assert np.array_equal(prot.values, vals0)

    def test_crc_odd_tail_sed(self):
        coo, csr = make_coo(nx=3, ny=3)  # 45 nnz, odd
        assert csr.nnz % 2 == 1
        prot = ProtectedCOOMatrix(coo, "crc32c")
        assert prot.elements.n_codewords == 45 // 2 + 1
        f64_to_u64(prot.values)[-1] ^= np.uint64(1) << np.uint64(20)
        flags = prot.elements.detect()
        assert flags[-1]
        report = prot.check_all()["coo_elements"]
        assert report.n_uncorrectable == 1  # SED tail detects only

    def test_sed_cannot_correct(self):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, "sed")
        prot.colidx[0] ^= np.uint32(1)
        report = prot.check_all()["coo_elements"]
        assert report.n_uncorrectable == 1

    def test_bounds_check(self):
        coo, _ = make_coo()
        prot = ProtectedCOOMatrix(coo, "secded128")
        prot.bounds_check()
        prot.colidx[5] = (prot.colidx[5] & np.uint32(0xFF000000)) | np.uint32(
            0x00FFFFFF
        )
        with pytest.raises(BoundsViolationError):
            prot.bounds_check()

    def test_dimension_limits(self):
        with pytest.raises(ConfigurationError):
            ProtectedCOOElements(
                np.ones(1), np.zeros(1, np.uint32), np.zeros(1, np.uint32),
                (2**24 + 1, 4), "secded128",
            )

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            ProtectedCOOElements(
                np.ones(1), np.zeros(1, np.uint32), np.zeros(1, np.uint32),
                (4, 4), "secded64",
            )


@given(
    st.sampled_from(SCHEMES),
    st.integers(0, 149),
    st.integers(0, 127),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_any_single_flip_never_silent(scheme, element, bit, seed):
    coo, _ = make_coo(seed=seed % 50)
    prot = ProtectedCOOMatrix(coo, scheme)
    if bit < 64:
        f64_to_u64(prot.values)[element] ^= np.uint64(1) << np.uint64(bit)
    elif bit < 96:
        prot.rowidx[element] ^= np.uint32(1) << np.uint32(bit - 64)
    else:
        prot.colidx[element] ^= np.uint32(1) << np.uint32(bit - 96)
    assert prot.detect_any()
