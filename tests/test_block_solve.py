"""Blocked multi-RHS solves: column parity, fault isolation, serving.

The contracts pinned here (ISSUE 10):

* column ``j`` of a blocked solve — plain or protected, any preset with
  a group-1 vector scheme — is **bitwise identical** to the single-RHS
  solve of that column: same ``x``, same iteration count, same residual
  history;
* the blocked fused kernel corrects an injected matrix flip for all
  ``k`` products at once, and damage confined to one column of a
  blocked vector store is repaired without perturbing the siblings;
* the multi-RHS gather tile is persistent: a warm blocked verified
  product allocates nothing proportional to ``k * nnz``;
* ``REPRO_BLOCK_SOLVE=0`` drops every entry point back to sequential
  per-column solves with identical results;
* the serving layer groups compatible batch jobs into one blocked solve
  (visible in ``blocked_k`` / ``stats.blocked_jobs``) without changing
  any job's record, event stream shape, or cached identity — and the
  pipelined ``solve_many`` lands a whole client batch in one window.
"""

import asyncio
import threading
import tracemalloc

import numpy as np
import pytest

import repro
from repro import backends
from repro.bits.float_bits import f64_to_u64
from repro.csr.build import five_point_operator
from repro.errors import ConfigurationError
from repro.protect import (
    ProtectedBlockVector,
    ProtectedCSRMatrix,
    ProtectionConfig,
    ProtectionSession,
)
from repro.serve import workers as serve_workers
from repro.serve.cache import MatrixCache, SessionPool
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import SolveServer
from repro.serve.service import ServeConfig, SolveService
from repro.solvers import BlockResult, cg_solve, solve_block
from repro.solvers.block import block_solve_enabled


def make_matrix(n=12, seed=3):
    rng = np.random.default_rng(seed)
    kx = rng.uniform(0.5, 2.0, (n, n))
    ky = rng.uniform(0.5, 2.0, (n, n))
    return five_point_operator(n, n, kx, ky, 0.25)


def make_block_system(n=12, k=4, seed=3):
    A = make_matrix(n=n, seed=seed)
    B = np.random.default_rng(seed + 100).standard_normal((A.n_rows, k))
    return A, B


PROTECTED_PRESETS = [
    ("paper_default", lambda: ProtectionConfig.paper_default()),
    ("deferred16", lambda: ProtectionConfig.deferred(window=16)),
]


# ---------------------------------------------------------------------------
class TestKernelParity:
    """spmv_verified_multi row j == spmv_verified of column j, bitwise."""

    @pytest.mark.parametrize("scheme", ["sed", "secded64", "secded128", "crc32c"])
    def test_clean_blocked_product_matches_single(self, scheme):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
        X = np.random.default_rng(7).standard_normal((5, matrix.n_cols))
        backend = backends.get_backend()
        Y, reports = pmat.spmv_verified_multi(X, backend=backend)
        assert reports["row_pointer"].ok and reports["csr_elements"].ok
        for j in range(X.shape[0]):
            solo = ProtectedCSRMatrix(matrix, scheme, scheme)
            y, _ = solo.spmv_verified(X[j], backend=backend)
            assert np.array_equal(Y[j], y)

    def test_correctable_flip_repaired_for_all_columns(self):
        matrix = make_matrix(seed=5)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        X = np.random.default_rng(11).standard_normal((3, matrix.n_cols))
        clean = np.stack([matrix.matvec(X[j]) for j in range(3)])
        f64_to_u64(pmat.values)[17] ^= np.uint64(1) << np.uint64(40)
        Y, reports = pmat.spmv_verified_multi(X, backend=backends.get_backend())
        assert reports["csr_elements"].n_corrected == 1
        assert np.array_equal(Y, clean)

    def test_multi_gather_tile_is_allocation_free_when_warm(self):
        """A warm blocked verified product must not allocate a fresh
        ``(k, nnz)`` products array or ``k * chunk`` gather tile."""
        matrix = make_matrix(n=40)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        k = 4
        X = np.random.default_rng(0).standard_normal((k, matrix.n_cols))
        out = np.empty((k, pmat.n_rows))
        backend = backends.get_backend()
        pmat.spmv_verified_multi(X, out=out, backend=backend)  # warm
        tracemalloc.start()
        for _ in range(3):
            Y, reports = pmat.spmv_verified_multi(X, out=out, backend=backend)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert Y is out and reports["csr_elements"].ok
        # One (k, nnz) temporary would be k * nnz * 8 bytes; stay well under.
        assert peak < k * pmat.nnz * 8 / 2, f"peak {peak} bytes"


# ---------------------------------------------------------------------------
class TestBlockVector:
    def test_roundtrip_and_shape(self):
        block = np.random.default_rng(3).standard_normal((4, 33))
        pvec = ProtectedBlockVector(block, "secded64")
        assert pvec.block_shape == (4, 33)
        assert pvec.values2d().shape == (4, 33)
        # secded64 keeps 56 mantissa bits: re-masking is idempotent and
        # uniform across columns.
        assert np.array_equal(
            pvec.values2d(),
            ProtectedBlockVector(pvec.values2d(), "secded64").values2d(),
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            ProtectedBlockVector(np.zeros(8), "secded64")

    def test_column_damage_does_not_perturb_siblings(self):
        block = np.random.default_rng(5).standard_normal((3, 40))
        pvec = ProtectedBlockVector(block, "secded64")
        clean = pvec.values2d().copy()
        # Flip a protected mantissa bit inside column 1's row only.
        flat_index = 1 * 40 + 7
        f64_to_u64(pvec.raw)[flat_index] ^= np.uint64(1) << np.uint64(33)
        report = pvec.check(correct=True)
        assert report.ok and report.n_corrected == 1
        assert np.array_equal(pvec.values2d(), clean)


# ---------------------------------------------------------------------------
class TestBlockedCGParity:
    def test_plain_columns_bitwise_match_single_rhs(self):
        A, B = make_block_system(k=5)
        res = repro.solve(A, B, eps=1e-18)
        assert isinstance(res, BlockResult)
        for j in range(B.shape[1]):
            solo = cg_solve(A, B[:, j], eps=1e-18)
            assert solo.x.tobytes() == res.x[:, j].tobytes()
            assert solo.iterations == res.iterations[j]
            assert solo.converged == bool(res.converged[j])
            assert solo.residual_norms == res.residual_norms[j]

    @pytest.mark.parametrize("name,make_config", PROTECTED_PRESETS)
    def test_protected_columns_bitwise_match_single_rhs(self, name, make_config):
        A, B = make_block_system(k=4)
        blocked = repro.solve(A, B, protection=make_config(), eps=1e-18)
        assert blocked.info["fused_products"] > 0 or name != "paper_default"
        for j in range(B.shape[1]):
            solo = repro.solve(A, B[:, j], protection=make_config(), eps=1e-18)
            assert solo.x.tobytes() == blocked.x[:, j].tobytes()
            assert solo.iterations == blocked.iterations[j]
            assert solo.residual_norms == blocked.residual_norms[j]

    def test_per_column_targets_freeze_stragglers(self):
        A, B = make_block_system(k=3)
        res = repro.solve(A, B, eps=[1e-4, 1e-18, 1e-10])
        assert res.converged.all()
        assert res.iterations[0] < res.iterations[2] < res.iterations[1]
        # The early-frozen column is exactly its solo loose-target solve.
        solo = cg_solve(A, B[:, 0], eps=1e-4)
        assert solo.x.tobytes() == res.x[:, 0].tobytes()

    def test_per_column_max_iters_caps_independently(self):
        A, B = make_block_system(k=2)
        res = repro.solve(A, B, eps=1e-18, max_iters=[3, 10_000])
        assert res.iterations[0] == 3 and not res.converged[0]
        assert res.converged[1]

    def test_injected_matrix_flip_corrected_without_perturbing_columns(self):
        """A correctable matrix upset before a blocked solve is repaired
        on the blocked product's traffic and every column still matches
        its clean solo solve bitwise."""
        A, B = make_block_system(k=3, seed=9)
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        f64_to_u64(pmat.values)[23] ^= np.uint64(1) << np.uint64(41)
        config = ProtectionConfig.paper_default()
        res = repro.solve(pmat, B, protection=config, eps=1e-18)
        assert res.info["corrected"] >= 1
        for j in range(B.shape[1]):
            solo = repro.solve(A, B[:, j],
                               protection=ProtectionConfig.paper_default(),
                               eps=1e-18)
            assert solo.x.tobytes() == res.x[:, j].tobytes()

    def test_session_blocked_solve_and_sweep(self):
        A, B = make_block_system(k=3)
        with ProtectionSession(ProtectionConfig.deferred(window=16)) as session:
            res = repro.solve(A, B, protection=session, eps=1e-18)
            session.end_step()
            solo = repro.solve(A, B[:, 1], protection=session, eps=1e-18)
            session.end_step()
        assert res.converged.all() and solo.converged

    def test_distributed_rejects_blocked_rhs(self):
        A, B = make_block_system(k=2)
        with pytest.raises(ConfigurationError):
            repro.solve(A, B, distributed=2)


# ---------------------------------------------------------------------------
class TestDispatchFallbacks:
    def test_env_gate_disables_blocking(self, monkeypatch):
        A, B = make_block_system(k=3)
        blocked = repro.solve(A, B, eps=1e-18)
        monkeypatch.setenv("REPRO_BLOCK_SOLVE", "0")
        assert not block_solve_enabled()
        sequential = repro.solve(A, B, eps=1e-18)
        assert sequential.info.get("sequential_fallback") is True
        assert sequential.x.tobytes() == blocked.x.tobytes()
        assert np.array_equal(sequential.iterations, blocked.iterations)

    def test_non_cg_method_falls_back_sequentially(self):
        A, B = make_block_system(k=2)
        res = repro.solve(A, B, method="jacobi", eps=1e-10, max_iters=20_000)
        assert res.info.get("sequential_fallback") is True
        assert res.converged.all()

    def test_method_kwargs_fall_back_sequentially(self):
        from repro.solvers import JacobiPreconditioner

        A, B = make_block_system(k=2)
        res = solve_block(A, B, eps=1e-12,
                          preconditioner=JacobiPreconditioner(A.diagonal()))
        assert res.info.get("sequential_fallback") is True
        assert res.converged.all()

    def test_column_accessor_shapes(self):
        A, B = make_block_system(k=3)
        res = repro.solve(A, B, eps=1e-12)
        col = res.column(2)
        assert col.x.shape == (A.n_rows,)
        assert isinstance(col.iterations, int)
        assert col.residual_norms == res.residual_norms[2]


# ---------------------------------------------------------------------------
def five_point_job(b_seed=0, grid=10, matrix_seed=3, protection="deferred",
                   **extra):
    job = {
        "matrix": {"kind": "five-point", "grid": grid, "seed": matrix_seed},
        "b": {"seed": b_seed}, "method": "cg", "eps": 1e-10,
        "protection": protection,
    }
    job.update(extra)
    return job


@pytest.fixture
def fresh_workers(monkeypatch):
    """Isolate each test from the process-global warm caches."""
    monkeypatch.setattr(serve_workers, "CACHE", MatrixCache())
    monkeypatch.setattr(serve_workers, "SESSIONS", SessionPool())
    return serve_workers


def run_service(jobs, **config):
    """Submit ``jobs`` to a fresh in-process service; return their records."""

    async def main():
        service = SolveService(ServeConfig(**config))
        await service.start()
        submits = [await service.submit(job) for job in jobs]
        records = [await service.result(s["job_id"]) for s in submits]
        events = {s["job_id"]: list(service._events[s["job_id"]]) for s in submits}
        status = service.status()
        await service.stop()
        return records, events, status

    return asyncio.run(main())


class TestServeBlockedBatches:
    def test_compatible_jobs_grouped_into_one_blocked_solve(self, fresh_workers):
        jobs = [five_point_job(b_seed=i) for i in range(4)]
        records, events, status = run_service(jobs, batch_window=0.05)
        assert all(r["status"] == "done" and r["converged"] for r in records)
        assert all(r.get("blocked_k") == 4 for r in records)
        assert status["stats"]["blocked_jobs"] == 4
        # Clean blocked jobs keep the canonical stream shape.
        for stream in events.values():
            assert [e["event"] for e in stream] == ["accepted", "started", "done"]

    def test_blocked_records_match_solo_serving(self, fresh_workers):
        jobs = [five_point_job(b_seed=i, return_x=True) for i in range(3)]
        blocked, _, _ = run_service(jobs, batch_window=0.05)
        serve_workers.CACHE, serve_workers.SESSIONS = MatrixCache(), SessionPool()
        solo_records = []
        for job in jobs:
            solo, _, _ = run_service([job], block_solve=False)
            solo_records.extend(solo)
        for got, want in zip(blocked, solo_records):
            assert got["job_id"] == want["job_id"]
            assert got["iterations"] == want["iterations"]
            assert got["x"] == want["x"]

    def test_block_solve_off_serves_solo(self, fresh_workers):
        jobs = [five_point_job(b_seed=i) for i in range(3)]
        records, _, status = run_service(jobs, batch_window=0.05,
                                         block_solve=False)
        assert all(r["status"] == "done" for r in records)
        assert status["stats"]["blocked_jobs"] == 0
        assert not any("blocked_k" in r for r in records)
        assert status["config"]["block_solve"] is False

    def test_injection_jobs_stay_private_while_siblings_block(self, fresh_workers):
        inject = five_point_job(b_seed=9, protection="paper_default",
                                inject={"rate": 1e-9, "seed": 1})
        plain = [five_point_job(b_seed=i, protection="paper_default")
                 for i in range(2)]
        records, _, status = run_service([inject] + plain, batch_window=0.05)
        by_id = {r["job_id"]: r for r in records}
        assert all(r["status"] == "done" for r in records)
        injected = [r for r in by_id.values() if "injected" in r]
        assert len(injected) == 1 and "blocked_k" not in injected[0]
        assert status["stats"]["blocked_jobs"] == 2

    def test_single_job_batches_never_block(self, fresh_workers):
        records, _, status = run_service([five_point_job(b_seed=1)])
        assert records[0]["status"] == "done"
        assert "blocked_k" not in records[0]
        assert status["stats"]["blocked_jobs"] == 0

    def test_worker_stats_expose_per_process_cache(self, fresh_workers):
        jobs = [five_point_job(b_seed=i) for i in range(3)]
        _, _, status = run_service(jobs, batch_window=0.05)
        assert len(status["workers"]) == 1
        (worker,) = status["workers"].values()
        assert worker["batches"] >= 1
        assert worker["blocked_jobs"] == 3
        assert worker["cache"]["encodes"] == 1


class TestPipelinedSolveMany:
    @pytest.fixture
    def live_server(self, fresh_workers):
        holder, ready = {}, threading.Event()

        def runner():
            async def amain():
                server = SolveServer(SolveService(ServeConfig(batch_window=0.1)))
                holder["server"] = server
                _, holder["port"] = await server.start()
                ready.set()
                await server.serve_forever()

            asyncio.run(amain())

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert ready.wait(10), "server failed to start"
        yield holder
        try:
            ServeClient(port=holder["port"]).shutdown()
        except (ServeClientError, OSError):
            pass
        thread.join(10)

    def test_solve_many_lands_in_one_blocked_batch(self, live_server):
        client = ServeClient(port=live_server["port"])
        jobs = [five_point_job(b_seed=i) for i in range(4)]
        records = client.solve_many(jobs)
        assert [r["status"] for r in records] == ["done"] * 4
        # Pipelined submits coalesce in one window -> one blocked group.
        assert all(r.get("blocked_k") == 4 for r in records)
        status = client.status()
        assert status["stats"]["batches"] == 1
        assert status["stats"]["blocked_jobs"] == 4

    def test_solve_many_empty_batch(self, live_server):
        assert ServeClient(port=live_server["port"]).solve_many([]) == []
