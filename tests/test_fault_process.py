"""Poisson fault process and the faulty-solve driver."""

import numpy as np

from repro.csr import five_point_operator
from repro.faults import PoissonProcess, faulty_cg_solve
from repro.protect import CheckPolicy, ProtectedCSRMatrix


def make_matrix(seed=0):
    rng = np.random.default_rng(seed)
    return five_point_operator(
        10, 10, rng.uniform(0.5, 2.0, (10, 10)), rng.uniform(0.5, 2.0, (10, 10)), 0.3
    )


class TestPoissonProcess:
    def test_zero_rate_no_events(self):
        proc = PoissonProcess(0.0)
        assert proc.advance(10**9) == 0

    def test_rate_scales_event_count(self):
        proc = PoissonProcess(1e-6, rng=np.random.default_rng(1))
        counts = [proc.advance(10**6) for _ in range(200)]
        assert 0.7 < np.mean(counts) < 1.3  # lambda = 1

    def test_sample_region_targets_all_arrays(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        proc = PoissonProcess(1e-3, rng=np.random.default_rng(2))
        events = proc.sample_region(pmat)
        regions = {region.value for region, _ in events}
        assert {"values", "colidx"} <= regions  # rowptr is tiny, may miss

    def test_exposure_scales(self):
        proc = PoissonProcess(1e-6, rng=np.random.default_rng(3))
        counts = [proc.advance(10**6, exposure=5.0) for _ in range(200)]
        assert 4.3 < np.mean(counts) < 5.7


class TestFaultyCGSolve:
    def test_no_faults_converges_normally(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        b = np.random.default_rng(4).standard_normal(matrix.n_rows)
        report = faulty_cg_solve(pmat, b, PoissonProcess(0.0), eps=1e-20)
        assert report.result is not None and report.result.converged
        assert report.injected == 0
        assert report.all_accounted

    def test_secded_corrects_under_light_rate(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        b = np.random.default_rng(5).standard_normal(matrix.n_rows)
        proc = PoissonProcess(3e-6, rng=np.random.default_rng(6))
        report = faulty_cg_solve(pmat, b, proc, eps=1e-20)
        assert report.injected > 0
        assert report.corrected > 0
        assert report.all_accounted  # nothing silent at the end

    def test_sed_detects_and_recovers_by_reencode(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        b = np.random.default_rng(7).standard_normal(matrix.n_rows)
        proc = PoissonProcess(3e-6, rng=np.random.default_rng(8))
        report = faulty_cg_solve(pmat, b, proc, eps=1e-20, on_due="reencode")
        assert report.injected > 0
        assert report.detected_uncorrectable > 0
        assert report.result is not None and report.result.converged
        assert report.all_accounted

    def test_abort_mode_stops(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        b = np.ones(matrix.n_rows)
        proc = PoissonProcess(5e-6, rng=np.random.default_rng(9))
        report = faulty_cg_solve(pmat, b, proc, eps=1e-30, max_iters=200,
                                 on_due="abort")
        assert report.detected_uncorrectable >= 1
        assert report.result is None

    def test_deferred_policy_end_of_step_sweep_catches(self):
        """With interval-N checks an error can lurk; the mandatory sweep
        at the end must still account for it (paper §VI.A.2)."""
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        b = np.random.default_rng(10).standard_normal(matrix.n_rows)
        proc = PoissonProcess(2e-6, rng=np.random.default_rng(11))
        policy = CheckPolicy(interval=16, correct=True)
        report = faulty_cg_solve(pmat, b, proc, eps=1e-20, policy=policy)
        assert report.injected > 0
        assert report.all_accounted

    def test_injection_iterations_recorded(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        b = np.ones(matrix.n_rows)
        proc = PoissonProcess(3e-6, rng=np.random.default_rng(12))
        report = faulty_cg_solve(pmat, b, proc, eps=1e-20)
        if report.injected:
            assert report.injection_iterations
            assert all(i >= 0 for i in report.injection_iterations)
