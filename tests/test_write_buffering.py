"""Write-buffering semantics (paper §VI.C) and cross-region scenarios.

The §VI.C claim: committing whole codewords per write (a) needs exactly
one ECC calculation per write, (b) never needs a read-modify-write, and
(c) avoids races because no two writers share a codeword.  These tests
pin the observable halves of that contract: stores are oblivious to the
previous stored state, and partial-codeword information never leaks.
"""

import numpy as np
import pytest

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.errors import DetectedUncorrectableError
from repro.protect import (
    CheckPolicy,
    ProtectedCSRMatrix,
    ProtectedVector,
    protected_axpy,
    protected_spmv,
)


class TestStoreIsStateOblivious:
    @pytest.mark.parametrize("scheme", ["sed", "secded64", "secded128", "crc32c"])
    def test_store_result_independent_of_previous_content(self, scheme):
        """store(v) produces identical stored bits regardless of history —
        the no-read-modify-write property."""
        rng = np.random.default_rng(0)
        target = rng.standard_normal(64)
        a = ProtectedVector(rng.standard_normal(64), scheme)
        b = ProtectedVector(np.zeros(64), scheme)
        a.store(target)
        b.store(target)
        assert np.array_equal(f64_to_u64(a.raw), f64_to_u64(b.raw))

    @pytest.mark.parametrize("scheme", ["secded64", "crc32c"])
    def test_store_overwrites_corruption(self, scheme):
        """A full-codeword write needs no valid previous state: storing
        over corrupted memory yields a clean codeword."""
        rng = np.random.default_rng(1)
        vec = ProtectedVector(rng.standard_normal(64), scheme)
        f64_to_u64(vec.raw)[5] ^= np.uint64(1) << np.uint64(30)  # corrupt
        vec.store(rng.standard_normal(64))  # write without reading
        assert not vec.detect().any()


class TestCrossRegionScenarios:
    def test_simultaneous_faults_in_all_regions(self):
        rng = np.random.default_rng(2)
        A = five_point_operator(
            8, 8, rng.uniform(0.5, 2.0, (8, 8)), rng.uniform(0.5, 2.0, (8, 8)), 0.3
        )
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        f64_to_u64(pmat.values)[3] ^= np.uint64(1) << np.uint64(12)
        pmat.colidx[40] ^= np.uint32(1) << np.uint32(4)
        pmat.rowptr[7] ^= np.uint32(1) << np.uint32(2)
        reports = pmat.check_all()
        total = sum(r.n_corrected for r in reports.values())
        assert total == 3
        assert not pmat.detect_any()

    def test_spmv_with_corrupt_vector_and_matrix(self):
        rng = np.random.default_rng(3)
        A = five_point_operator(
            8, 8, rng.uniform(0.5, 2.0, (8, 8)), rng.uniform(0.5, 2.0, (8, 8)), 0.3
        )
        x = rng.standard_normal(A.n_cols)
        expected = A.matvec(x)
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        px = ProtectedVector(x, "secded64")
        f64_to_u64(pmat.values)[10] ^= np.uint64(1) << np.uint64(3)
        f64_to_u64(px.raw)[10] ^= np.uint64(1) << np.uint64(3)
        got = protected_spmv(pmat, px, CheckPolicy(interval=1, correct=True))
        assert np.allclose(got, expected, rtol=1e-12)

    def test_mixed_schemes_mixed_outcomes(self):
        """SED rowptr (detect-only) + SECDED elements (correcting)."""
        rng = np.random.default_rng(4)
        A = five_point_operator(
            8, 8, rng.uniform(0.5, 2.0, (8, 8)), rng.uniform(0.5, 2.0, (8, 8)), 0.3
        )
        pmat = ProtectedCSRMatrix(A, "secded64", "sed")
        f64_to_u64(pmat.values)[3] ^= np.uint64(1) << np.uint64(12)
        pmat.rowptr[7] ^= np.uint32(1) << np.uint32(2)
        reports = pmat.check_all()
        assert reports["csr_elements"].n_corrected == 1
        assert reports["row_pointer"].n_uncorrectable == 1

    def test_axpy_chain_keeps_vectors_clean(self):
        rng = np.random.default_rng(5)
        x = ProtectedVector(rng.standard_normal(32), "crc32c")
        y = ProtectedVector(rng.standard_normal(32), "crc32c")
        for alpha in (0.5, -1.25, 3.0):
            protected_axpy(alpha, x, y)
            assert y.check().clean

    def test_due_aborts_before_bad_data_used(self):
        """SpMV must raise before producing results from corrupt indices."""
        rng = np.random.default_rng(6)
        A = five_point_operator(
            8, 8, rng.uniform(0.5, 2.0, (8, 8)), rng.uniform(0.5, 2.0, (8, 8)), 0.3
        )
        pmat = ProtectedCSRMatrix(A, "sed", "sed")
        pmat.colidx[0] ^= np.uint32(1) << np.uint32(2)
        with pytest.raises(DetectedUncorrectableError):
            protected_spmv(pmat, np.ones(A.n_cols), CheckPolicy(interval=1))
