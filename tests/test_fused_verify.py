"""Verify-in-SpMV fused kernel: parity, coverage accounting, allocation.

The contracts pinned here:

* ``spmv_verified`` is **bitwise identical** to decode-then-SpMV for
  every element scheme — on clean storage, after a correctable flip it
  repaired mid-product, and in its non-fused fallback;
* an uncorrectable codeword surfaces exactly like ``check_or_raise``:
  ``y is None`` with the failure in the report, and a
  :class:`DetectedUncorrectableError` out of the engine path;
* the end-of-step sweep verifies exactly the complement of fused
  coverage — matrices whose *last* access was a due fused product are
  skipped (counted in ``stats.sweeps_skipped``), while any trailing
  non-due access clears coverage so the sweep runs and nothing that was
  consumed unverified escapes;
* the fused product allocates nothing proportional to ``nnz`` once the
  persistent buffers are warm;
* ``ProtectionConfig.fused_verify`` resolves None -> on, honours
  ``REPRO_FUSED_VERIFY=0``, and a fused solve converges bit-identically
  to the classic schedule.
"""

import tracemalloc

import numpy as np
import pytest

from repro import backends
from repro.bits.float_bits import f64_to_u64
from repro.csr.build import five_point_operator
from repro.errors import DetectedUncorrectableError
from repro.protect.config import ProtectionConfig
from repro.protect.matrix import ProtectedCSRMatrix
from repro.solvers import get_method

MATRIX_SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


def make_matrix(n=12, seed=3):
    rng = np.random.default_rng(seed)
    kx = rng.uniform(0.5, 2.0, (n, n))
    ky = rng.uniform(0.5, 2.0, (n, n))
    return five_point_operator(n, n, kx, ky, 0.25)


def make_system(n=10, seed=3):
    rng = np.random.default_rng(seed)
    A = five_point_operator(
        n, n, rng.uniform(0.5, 2.0, (n, n)), rng.uniform(0.5, 2.0, (n, n)), 0.4
    )
    x_true = rng.standard_normal(A.n_rows)
    return A, A.matvec(x_true), x_true


def reference_product(pmat, x):
    """Decode-then-SpMV ground truth through the same kernel plumbing."""
    return pmat.to_csr().matvec(x)


class TestBitwiseParity:
    @pytest.mark.parametrize("scheme", MATRIX_SCHEMES)
    def test_clean_storage_matches_decode_then_spmv(self, scheme):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
        x = np.random.default_rng(7).standard_normal(matrix.n_cols)
        backend = backends.get_backend()
        y, reports = pmat.spmv_verified(x, backend=backend)
        assert reports["row_pointer"].ok and reports["csr_elements"].ok
        assert np.array_equal(y, reference_product(pmat, x))
        assert np.array_equal(y, matrix.matvec(x))

    @pytest.mark.parametrize("scheme", ["secded64", "secded128", "crc32c"])
    def test_correctable_flip_mid_product_is_repaired(self, scheme):
        """A single-bit value flip is corrected on the product's traffic
        and the result is bitwise the clean product."""
        matrix = make_matrix(seed=5)
        pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
        x = np.random.default_rng(11).standard_normal(matrix.n_cols)
        clean = reference_product(pmat, x)
        f64_to_u64(pmat.values)[17] ^= np.uint64(1) << np.uint64(40)
        y, reports = pmat.spmv_verified(x, backend=backends.get_backend())
        assert reports["csr_elements"].n_corrected == 1
        assert reports["csr_elements"].ok
        assert np.array_equal(y, clean)
        # storage itself was repaired, not just the product
        assert np.array_equal(reference_product(pmat, x), clean)

    def test_correctable_index_flip_regathers_window(self):
        """A flipped column index must be corrected *before* the gather —
        the cold path refills the decoded window from repaired storage."""
        matrix = make_matrix(seed=9)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        x = np.random.default_rng(13).standard_normal(matrix.n_cols)
        clean = reference_product(pmat, x)
        pmat.colidx[23] ^= np.uint32(1) << np.uint32(3)
        y, reports = pmat.spmv_verified(x, backend=backends.get_backend())
        assert reports["csr_elements"].n_corrected == 1
        assert np.array_equal(y, clean)

    @pytest.mark.parametrize("scheme", ["secded64", "secded128"])
    def test_uncorrectable_yields_none_and_bad_report(self, scheme):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
        f64_to_u64(pmat.values)[7] ^= np.uint64(0b101) << np.uint64(30)
        y, reports = pmat.spmv_verified(
            np.ones(matrix.n_cols), backend=backends.get_backend()
        )
        assert y is None
        assert not reports["csr_elements"].ok
        assert reports["csr_elements"].n_uncorrectable >= 1

    def test_rowptr_corruption_is_checked_first(self):
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        x = np.ones(matrix.n_cols)
        clean = reference_product(pmat, x)
        pmat.rowptr_protected.raw[3] ^= np.uint32(1) << np.uint32(2)
        y, reports = pmat.spmv_verified(x, backend=backends.get_backend())
        assert reports["row_pointer"].n_corrected == 1
        assert np.array_equal(y, clean)

    def test_fallback_without_backend_matches(self):
        """backend=None forces the verify-then-multiply fallback; results
        and reports must match the fused path bit for bit."""
        matrix = make_matrix()
        x = np.random.default_rng(3).standard_normal(matrix.n_cols)
        fused = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        plain = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        assert not plain.supports_fused_verify(None)
        y_fused, _ = fused.spmv_verified(x, backend=backends.get_backend())
        y_plain, reports = plain.spmv_verified(x, backend=None)
        assert reports["csr_elements"].ok
        assert np.array_equal(y_fused, y_plain)

    def test_snapshot_refreshed_on_fused_success(self):
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        pmat.invalidate_clean_views()
        pmat.spmv_verified(
            np.ones(pmat.n_cols), backend=backends.get_backend()
        )
        assert pmat._views_valid


class TestCoverageAccounting:
    def fused_engine(self, interval=4, **kw):
        config = ProtectionConfig(
            element_scheme="secded64", rowptr_scheme="secded64",
            interval=interval, fused_verify=True, **kw,
        )
        return config.engine()

    def test_due_access_counts_fused_product_and_full_check(self):
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        engine = self.fused_engine(interval=2)
        x = np.ones(pmat.n_cols)
        for _ in range(4):
            engine.spmv(pmat, x)
        # accesses 0 and 2 are due -> fused; 1 and 3 ride the snapshot
        assert engine.stats.fused_products == 2
        assert engine.stats.full_checks == 2
        assert engine.stats.stripe_checks == 0
        assert engine.stats.bounds_checks == 2

    def test_finalize_skips_swept_matrix_when_covered(self):
        """Last access was a due fused product -> the sweep is redundant
        and is skipped, with the skip accounted."""
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        engine = self.fused_engine(interval=2)
        engine.spmv(pmat, np.ones(pmat.n_cols))  # access 0: due, fused, covered
        before = engine.stats.full_checks
        engine.finalize()
        assert engine.stats.sweeps_skipped == 1
        assert engine.stats.full_checks == before

    def test_trailing_nondue_access_clears_coverage(self):
        """Anything consumed unverified after the last fused product puts
        the sweep back — the exact complement contract."""
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        engine = self.fused_engine(interval=2)
        x = np.ones(pmat.n_cols)
        engine.spmv(pmat, x)  # access 0: due, fused -> covered
        engine.spmv(pmat, x)  # access 1: non-due -> coverage cleared
        before = engine.stats.full_checks
        engine.finalize()
        assert engine.stats.sweeps_skipped == 0
        assert engine.stats.full_checks == before + 1

    def test_sdc_guard_flip_consumed_by_nondue_access_is_caught(self):
        """A flip injected after the fused product and then consumed by a
        non-due access must not escape the step: coverage was cleared, so
        the end-of-step sweep runs and detects it."""
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        engine = self.fused_engine(interval=2, correct=False)
        x = np.ones(pmat.n_cols)
        engine.spmv(pmat, x)  # due, fused, covered
        f64_to_u64(pmat.values)[11] ^= np.uint64(1) << np.uint64(13)
        engine.spmv(pmat, x)  # non-due: consumes the flipped value
        with pytest.raises(DetectedUncorrectableError):
            engine.finalize()

    def test_uncovered_scheme_still_sweeps(self):
        """Non-fusible schemes never earn coverage even with the knob on."""
        pmat = ProtectedCSRMatrix(make_matrix(), "sed", "sed")
        engine = self.fused_engine(interval=2, correct=False)
        engine.spmv(pmat, np.ones(pmat.n_cols))
        f64_to_u64(pmat.values)[11] ^= np.uint64(1) << np.uint64(13)
        with pytest.raises(DetectedUncorrectableError):
            engine.finalize()
        assert engine.stats.fused_products == 0

    def test_engine_fused_due_detects_uncorrectable(self):
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        engine = self.fused_engine(interval=1, correct=False)
        f64_to_u64(pmat.values)[7] ^= np.uint64(0b11) << np.uint64(25)
        with pytest.raises(DetectedUncorrectableError):
            engine.spmv(pmat, np.ones(pmat.n_cols))


class TestConfigResolution:
    def test_none_resolves_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSED_VERIFY", raising=False)
        assert ProtectionConfig().resolved_fused_verify() is True

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_VERIFY", "0")
        assert ProtectionConfig().resolved_fused_verify() is False
        # explicit True overrides the environment
        assert ProtectionConfig(fused_verify=True).resolved_fused_verify() is True

    def test_explicit_false_sticks(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSED_VERIFY", raising=False)
        config = ProtectionConfig(fused_verify=False)
        assert config.resolved_fused_verify() is False
        assert config.policy().fused_verify is False

    def test_policy_receives_resolved_value(self):
        assert ProtectionConfig(fused_verify=True).policy().fused_verify is True

    def test_serve_spec_round_trip(self):
        import dataclasses

        from repro.serve.jobs import protection_from_spec

        config = ProtectionConfig(fused_verify=True)
        spec = dataclasses.asdict(config)
        assert spec["fused_verify"] is True
        assert protection_from_spec(spec) == config


class TestSolverIntegration:
    def test_fused_solve_matches_classic_bitwise(self):
        A, b, x_true = make_system()
        runs = {}
        for fused in (False, True):
            config = ProtectionConfig(
                element_scheme="secded64", rowptr_scheme="secded64",
                vector_scheme="secded64", interval=16, correct=False,
                fused_verify=fused,
            )
            pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
            result = get_method("cg").protected(pmat, b, engine=config.engine())
            runs[fused] = result
        assert runs[True].iterations == runs[False].iterations
        assert np.array_equal(runs[True].x, runs[False].x)
        assert runs[True].info["fused_products"] > 0
        assert runs[False].info["fused_products"] == 0
        assert np.allclose(runs[True].x, x_true, atol=1e-7)

    @pytest.mark.parametrize("method", ["cg", "jacobi", "chebyshev", "ppcg"])
    def test_every_protected_method_converges_fused(self, method):
        A, b, x_true = make_system()
        config = ProtectionConfig(
            element_scheme="secded64", rowptr_scheme="secded64",
            vector_scheme="secded64", interval=8, fused_verify=True,
        )
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        result = get_method(method).protected(
            pmat, b, engine=config.engine(), max_iters=20_000,
        )
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)
        assert result.info["fused_products"] > 0


class TestAllocationBounds:
    def test_fused_product_is_allocation_free_when_warm(self):
        """After the first product warms the persistent buffers, a fused
        verified product with a caller-held ``out`` allocates no
        nnz-proportional temporaries."""
        matrix = make_matrix(n=40)  # nnz ~ 7800; chunk-sized noise is fine
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        x = np.random.default_rng(0).standard_normal(matrix.n_cols)
        out = np.empty(pmat.n_rows)
        backend = backends.get_backend()
        pmat.spmv_verified(x, out=out, backend=backend)  # warm everything
        tracemalloc.start()
        for _ in range(3):
            y, reports = pmat.spmv_verified(x, out=out, backend=backend)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert y is out and reports["csr_elements"].ok
        # 8 bytes/nnz would be one nnz-sized temporary; stay well under.
        assert peak < pmat.nnz * 8 / 2, f"peak {peak} bytes"

    def test_engine_nondue_product_is_allocation_free_with_out(self):
        pmat = ProtectedCSRMatrix(make_matrix(n=40), "secded64", "secded64")
        config = ProtectionConfig(
            element_scheme="secded64", rowptr_scheme="secded64",
            interval=64, fused_verify=True,
        )
        engine = config.engine()
        x = np.random.default_rng(1).standard_normal(pmat.n_cols)
        out = np.empty(pmat.n_rows)
        engine.spmv(pmat, x, out=out)  # due: warms fused buffers
        engine.spmv(pmat, x, out=out)  # non-due: warms snapshot path
        tracemalloc.start()
        for _ in range(3):
            engine.spmv(pmat, x, out=out)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < pmat.nnz * 8 / 2, f"peak {peak} bytes"
