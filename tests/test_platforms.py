"""Platform model tests: anchors, orderings, interval behaviour."""

import pytest

from repro.platforms import (
    PAPER_ANCHORS,
    PLATFORMS,
    combined_full_protection,
    figure4_table,
    figure5_table,
    figure9_table,
    interval_figure,
    predict_overhead,
)
from repro.platforms.model import rangecheck_floor
from repro.platforms.specs import VECTOR_SED_RANGE


class TestAnchors:
    @pytest.mark.parametrize(
        "anchor", [a for a in PAPER_ANCHORS if a.region != "hw_ecc"],
        ids=lambda a: f"{a.platform}-{a.region}-{a.scheme}-N{a.interval}",
    )
    def test_model_reproduces_paper_number(self, anchor):
        interval = anchor.interval if anchor.interval != 999 else 128
        pred = predict_overhead(anchor.platform, anchor.region, anchor.scheme, interval)
        if anchor.mode == "le":
            assert pred <= anchor.value * 1.05
        else:
            assert abs(pred - anchor.value) <= max(0.015, 0.3 * anchor.value)

    def test_k40_hw_ecc_target(self):
        assert PLATFORMS["k40"].hw_ecc_overhead == pytest.approx(0.081)


class TestQualitativeShape:
    def test_sed_cheapest_everywhere(self):
        """SED has the lowest overhead of all schemes on every platform."""
        for table in (figure4_table(), figure5_table(), figure9_table()):
            for platform, by_scheme in table.items():
                others = [v for k, v in by_scheme.items() if k != "sed"]
                assert by_scheme["sed"] <= min(others), platform

    def test_k40_worst_for_abft(self):
        """The paper's occupancy story: ABFT overheads are poor on the K40."""
        fig4 = figure4_table()
        for scheme in ("sed", "secded64", "secded128"):
            for other in ("broadwell", "gtx1080ti", "p100"):
                assert fig4["k40"][scheme] > fig4[other][scheme]

    def test_pascal_cheap_secded(self):
        fig4 = figure4_table()
        for gpu in ("gtx1080ti", "p100"):
            assert fig4[gpu]["secded64"] < 0.01

    def test_software_crc_expensive_without_isa(self):
        """On Pascal, software CRC32C dominates SECDED (except the P100's
        massively parallel path); on the K40 *everything* is expensive,
        which test_k40_worst_for_abft covers."""
        fig4 = figure4_table()
        assert fig4["gtx1080ti"]["crc32c"] > 10 * fig4["gtx1080ti"]["secded64"]
        assert fig4["k40"]["crc32c"] > 0.5  # impractically expensive

    def test_secded128_never_beats_secded64_resilience_story(self):
        """Fig. 5 finding: SECDED128 offers no benefit over SECDED64.

        In the model it is slightly cheaper per element (amortisation)
        but the paper's point is resiliency-per-cost; assert the costs
        are comparable (within 2x) so neither dominates.
        """
        fig5 = figure5_table()
        for platform, by_scheme in fig5.items():
            ratio = by_scheme["secded128"] / by_scheme["secded64"]
            assert 0.5 <= ratio <= 2.0, platform

    def test_vector_sed_range_matches_paper(self):
        values = [figure9_table()[p]["sed"] for p in PLATFORMS]
        lo, hi = VECTOR_SED_RANGE
        assert min(values) >= lo * 0.5
        assert max(values) <= hi * 1.5
        assert max(values) > lo and min(values) < hi

    def test_full_protection_near_target(self):
        """~11% full protection vs the 8.1% hardware target (P100)."""
        full = combined_full_protection("p100")
        assert 0.08 <= full <= 0.14


class TestIntervalCurves:
    @pytest.mark.parametrize("platform,scheme", [
        ("broadwell", "sed"), ("thunderx", "secded64"), ("gtx1080ti", "crc32c"),
    ])
    def test_monotone_decreasing_to_floor(self, platform, scheme):
        curve = interval_figure(platform, scheme)
        values = [curve[n] for n in sorted(curve)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        floor = rangecheck_floor(platform)
        assert values[-1] >= floor * 0.5  # cannot beat the range checks

    def test_fig8_endpoints(self):
        """88% at N=1 down to ~1% at N=128."""
        curve = interval_figure("gtx1080ti", "crc32c")
        assert curve[1] == pytest.approx(0.88, abs=0.02)
        assert curve[128] < 0.02

    def test_fig6_diminishing_returns(self):
        """Broadwell SED: N=2 helps, beyond that gains vanish (floor)."""
        curve = interval_figure("broadwell", "sed")
        gain_2 = curve[1] - curve[2]
        gain_tail = curve[32] - curve[128]
        assert gain_2 > gain_tail
        assert curve[128] == pytest.approx(0.04, abs=0.015)

    def test_interval_ignored_for_vectors(self):
        """Vectors change every iteration: deferral does not apply."""
        assert predict_overhead("broadwell", "vector", "sed", 64) == pytest.approx(
            predict_overhead("broadwell", "vector", "sed", 1)
        )

    def test_unknown_region_raises(self):
        with pytest.raises(ValueError):
            predict_overhead("broadwell", "diagonal", "sed")
