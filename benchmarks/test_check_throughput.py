"""Verification-pipeline throughput: codewords/sec for a full SECDED check.

The solver benchmarks in ``test_t1_combined.py`` gate the *end-to-end*
overhead; this module gates the verification pipeline itself, so a
regression in the fused syndrome kernels (a dropped ``out=``, a lost
persistent buffer, an accidental re-materialisation) is caught even when
solver noise would hide it.  The ``t1-check-throughput`` group is part
of ``benchmarks/compare.py``'s default gate, as is ``t1-fused-verify``
— the verify-in-SpMV kernel benchmarked against the two-pass
check-then-product schedule it replaces.
"""

import numpy as np

from _common import BENCH_N, write_report
from repro import backends
from repro.protect.config import ProtectionConfig
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.vector import ProtectedVector
from repro.solvers.registry import solve


def test_secded_matrix_check_throughput(benchmark, bench_matrix):
    """Full secded64 matrix check (elements + row pointer), detect mode."""
    benchmark.group = "t1-check-throughput"
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    pmat.check_all(correct=False)  # warm the persistent lane buffers

    benchmark(lambda: pmat.check_all(correct=False))
    codewords = pmat.elements.n_codewords + pmat.rowptr_protected.n_codewords
    rate = codewords / benchmark.stats["mean"]
    benchmark.extra_info["codewords_per_sec"] = rate
    write_report(
        "check_throughput",
        "Verification throughput (full secded64 matrix check, "
        f"n={BENCH_N} deck)\n"
        f"  codewords per check     : {codewords}\n"
        f"  mean check time         : {benchmark.stats['mean'] * 1e3:.3f} ms\n"
        f"  codewords / second      : {rate:.3e}",
    )


def test_secded_matrix_check_and_correct_throughput(benchmark, bench_matrix):
    """The correcting variant exercised by eager (interval=1) schedules."""
    benchmark.group = "t1-check-throughput"
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    pmat.check_all(correct=True)

    benchmark(lambda: pmat.check_all(correct=True))


def test_secded_vector_check_throughput(benchmark, bench_matrix):
    """Clean-path protected-vector check (the per-iteration schedule unit)."""
    benchmark.group = "t1-check-throughput"
    vec = ProtectedVector(
        np.random.default_rng(23).standard_normal(bench_matrix.n_rows), "secded64"
    )
    vec.check(correct=False)

    benchmark(lambda: vec.check(correct=False))


def test_fused_verified_spmv_throughput(benchmark, bench_matrix, bench_x):
    """Verify-in-SpMV: full codeword coverage on the product's own traffic."""
    benchmark.group = "t1-fused-verify"
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    backend = backends.get_backend()
    out = np.empty(pmat.n_rows)
    pmat.spmv_verified(bench_x, out=out, backend=backend)  # warm buffers

    benchmark(lambda: pmat.spmv_verified(bench_x, out=out, backend=backend))
    codewords = pmat.elements.n_codewords + pmat.rowptr_protected.n_codewords
    fused_mean = benchmark.stats["mean"]
    benchmark.extra_info["codewords_per_sec"] = codewords / fused_mean
    write_report(
        "fused_verify",
        "Verify-in-SpMV throughput (secded64 verified product, "
        f"n={BENCH_N} deck)\n"
        f"  codewords per product   : {codewords}\n"
        f"  mean fused product      : {fused_mean * 1e3:.3f} ms\n"
        f"  codewords / second      : {codewords / fused_mean:.3e}",
    )


def test_sweep_then_spmv_throughput(benchmark, bench_matrix, bench_x):
    """The two-pass equivalent the fused kernel replaces: full check, then
    the product over the just-validated snapshot."""
    benchmark.group = "t1-fused-verify"
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    out = np.empty(pmat.n_rows)
    pmat.check_all(correct=False)
    pmat.matvec_unchecked(bench_x, out=out)

    def run():
        pmat.check_all(correct=False)
        pmat.matvec_unchecked(bench_x, out=out)

    benchmark(run)


def test_full_protection_cg_secded_fused_off(benchmark, bench_matrix):
    """Deferred16 CG with the fused kernels disabled — the classic
    sweep schedule, kept benchmarked so the fused win stays visible."""
    benchmark.group = "t1-fused-verify"
    b = np.random.default_rng(13).standard_normal(bench_matrix.n_rows)
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    config = ProtectionConfig.deferred(window=16).replace(fused_verify=False)

    def run():
        solve(pmat, b, method="cg", protection=config, eps=1e-12, max_iters=40)

    benchmark(run)
