"""Verification-pipeline throughput: codewords/sec for a full SECDED check.

The solver benchmarks in ``test_t1_combined.py`` gate the *end-to-end*
overhead; this module gates the verification pipeline itself, so a
regression in the fused syndrome kernels (a dropped ``out=``, a lost
persistent buffer, an accidental re-materialisation) is caught even when
solver noise would hide it.  The ``t1-check-throughput`` group is part
of ``benchmarks/compare.py``'s default gate.
"""

import numpy as np

from _common import BENCH_N, write_report
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.vector import ProtectedVector


def test_secded_matrix_check_throughput(benchmark, bench_matrix):
    """Full secded64 matrix check (elements + row pointer), detect mode."""
    benchmark.group = "t1-check-throughput"
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    pmat.check_all(correct=False)  # warm the persistent lane buffers

    benchmark(lambda: pmat.check_all(correct=False))
    codewords = pmat.elements.n_codewords + pmat.rowptr_protected.n_codewords
    rate = codewords / benchmark.stats["mean"]
    benchmark.extra_info["codewords_per_sec"] = rate
    write_report(
        "check_throughput",
        "Verification throughput (full secded64 matrix check, "
        f"n={BENCH_N} deck)\n"
        f"  codewords per check     : {codewords}\n"
        f"  mean check time         : {benchmark.stats['mean'] * 1e3:.3f} ms\n"
        f"  codewords / second      : {rate:.3e}",
    )


def test_secded_matrix_check_and_correct_throughput(benchmark, bench_matrix):
    """The correcting variant exercised by eager (interval=1) schedules."""
    benchmark.group = "t1-check-throughput"
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    pmat.check_all(correct=True)

    benchmark(lambda: pmat.check_all(correct=True))


def test_secded_vector_check_throughput(benchmark, bench_matrix):
    """Clean-path protected-vector check (the per-iteration schedule unit)."""
    benchmark.group = "t1-check-throughput"
    vec = ProtectedVector(
        np.random.default_rng(23).standard_normal(bench_matrix.n_rows), "secded64"
    )
    vec.check(correct=False)

    benchmark(lambda: vec.check(correct=False))
