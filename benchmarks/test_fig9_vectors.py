"""Fig. 9 — execution-time overheads of dense-vector protection.

The benchmark body is one CG-iteration kernel mix over protected vectors
(check-on-read, re-encode-on-write), versus the plain NumPy baseline.
"""

import numpy as np
import pytest

from _common import BENCH_N, write_report
from repro.harness.experiments import run_experiment
from repro.harness.report import format_table
from repro.protect.vector import ProtectedVector

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


def _cg_body_plain(matrix, x, r, p):
    w = matrix.matvec(p)
    alpha = float(np.dot(r, r)) / float(np.dot(p, w))
    x = x + alpha * p
    r = r - alpha * w
    beta = float(np.dot(r, r))
    p = r + (beta + 1e-30) * p
    return x, r, p


def test_cg_body_baseline(benchmark, bench_matrix, bench_x):
    benchmark.group = "fig9-vector-protection"
    r0 = np.random.default_rng(12).standard_normal(bench_matrix.n_cols)

    def run():
        x, r, p = bench_x.copy(), r0.copy(), r0.copy()
        for _ in range(2):
            x, r, p = _cg_body_plain(bench_matrix, x, r, p)

    benchmark(run)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_cg_body_protected_vectors(benchmark, bench_matrix, bench_x, scheme):
    benchmark.group = "fig9-vector-protection"
    r0 = np.random.default_rng(12).standard_normal(bench_matrix.n_cols)

    def run():
        px = ProtectedVector(bench_x, scheme)
        pr = ProtectedVector(r0, scheme)
        pp = ProtectedVector(r0, scheme)
        for _ in range(2):
            p_val = pp.values()
            pp.check(correct=False)
            w = bench_matrix.matvec(p_val)
            r_val = pr.values()
            pr.check(correct=False)
            alpha = float(np.dot(r_val, r_val)) / float(np.dot(p_val, w))
            px.check(correct=False)
            px.store(px.values() + alpha * p_val)
            r_new = r_val - alpha * w
            pr.store(r_new)
            beta = float(np.dot(r_new, r_new))
            pp.store(r_new + (beta + 1e-30) * p_val)

    benchmark(run)


def test_fig9_report(benchmark):
    benchmark.group = "fig9-report"
    rows = benchmark.pedantic(
        run_experiment, args=("fig9",), kwargs={"n": BENCH_N, "repeats": 3},
        iterations=1, rounds=1,
    )
    write_report(
        "fig9",
        format_table(rows, "Fig. 9: dense vector protection overhead (per scheme)"),
    )
