"""T1 — the paper's in-text headline numbers.

(a) the K40 hardware-ECC comparison target of 8.1 %;
(b) full protection (matrix + vectors, SECDED) at ~11 %, "getting close
    to our 8.1 % target";
(c) the protected solve converging with a solution-norm deviation at the
    noise floor and < 1 % extra iterations.

The headline `t1-full-protection` group benchmarks SECDED CG through the
deferred-verification engine (check window of 16 iterations, the paper's
interval model) next to the unprotected baseline; the eager
check-on-every-access configuration is kept as a separate benchmark for
the amortisation ratio.  Everything runs through the unified
``repro.solve`` registry path — the same entry point the TeaLeaf driver
and the campaigns use — so the gate also covers the dispatch layer.
``benchmarks/compare.py`` gates regressions of this group against the
committed ``BENCH_t1.json`` baseline.
"""

import numpy as np

from _common import BENCH_N, write_report
from repro.harness.experiments import run_experiment
from repro.harness.report import format_table
from repro.protect.config import ProtectionConfig
from repro.protect.matrix import ProtectedCSRMatrix
from repro.solvers.registry import solve

DEFERRED16 = ProtectionConfig.deferred(window=16)
EAGER = ProtectionConfig.paper_default().replace(correct=False)


def test_full_protection_cg_baseline(benchmark, bench_matrix):
    benchmark.group = "t1-full-protection"
    b = np.random.default_rng(13).standard_normal(bench_matrix.n_rows)
    benchmark(lambda: solve(bench_matrix, b, method="cg", eps=1e-12, max_iters=40))


def test_full_protection_cg_secded(benchmark, bench_matrix):
    """SECDED CG through the deferred-verification engine (window of 16)."""
    benchmark.group = "t1-full-protection"
    b = np.random.default_rng(13).standard_normal(bench_matrix.n_rows)
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")

    def run():
        solve(pmat, b, method="cg", protection=DEFERRED16,
              eps=1e-12, max_iters=40)

    benchmark(run)


def test_full_protection_cg_secded_eager(benchmark, bench_matrix):
    """The paper's check-on-every-access mode, kept for the amortisation ratio."""
    benchmark.group = "t1-full-protection-eager"
    b = np.random.default_rng(13).standard_normal(bench_matrix.n_rows)
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")

    def run():
        solve(pmat, b, method="cg", protection=EAGER, eps=1e-12, max_iters=40)

    benchmark(run)


def test_t1_report(benchmark):
    benchmark.group = "t1-report"
    rows = benchmark.pedantic(
        run_experiment, args=("t1",),
        kwargs={"n": min(BENCH_N, 192), "repeats": 3},
        iterations=1, rounds=1,
    )
    write_report(
        "t1",
        format_table(rows, "T1: combined full-protection headline numbers"),
    )


def test_t1_convergence_impact(benchmark, bench_matrix):
    """(c): solution-norm deviation and iteration overhead, measured."""
    benchmark.group = "t1-convergence"
    b = np.random.default_rng(14).standard_normal(bench_matrix.n_rows)

    def run():
        plain = solve(bench_matrix, b, method="cg", eps=1e-18, max_iters=300)
        prot = solve(
            bench_matrix, b, method="cg", eps=1e-18, max_iters=300,
            protection=ProtectionConfig.paper_default(),
        )
        return plain, prot

    plain, prot = benchmark.pedantic(run, iterations=1, rounds=1)
    norm_dev = abs(
        float(np.linalg.norm(prot.x)) - float(np.linalg.norm(plain.x))
    ) / float(np.linalg.norm(plain.x))
    iter_overhead = prot.iterations / max(plain.iterations, 1) - 1.0
    write_report(
        "t1_convergence",
        "T1(c): protected-solve accuracy impact\n"
        f"  solution norm deviation : {norm_dev:.3e}   (paper: within 2.0e-13)\n"
        f"  iteration overhead      : {100 * iter_overhead:+.2f}% (paper: < 1%)",
    )
    assert norm_dev < 1e-9
    assert iter_overhead < 0.01 + 1e-9
