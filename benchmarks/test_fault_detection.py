"""FI — fault-injection campaign benchmarks.

Not a paper figure, but the substrate of its resilience claims: campaign
throughput per scheme, and a summary table of detection/correction rates
(written to ``benchmarks/results/fault_campaigns.txt``).
"""

import numpy as np
import pytest

from _common import write_report
from repro.csr import five_point_operator
from repro.faults import (
    MultiBitFlip,
    Region,
    SingleBitFlip,
    run_matrix_campaign,
    run_vector_campaign,
)

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


def _matrix():
    rng = np.random.default_rng(21)
    return five_point_operator(
        16, 16, rng.uniform(0.5, 2.0, (16, 16)), rng.uniform(0.5, 2.0, (16, 16)), 0.3
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_campaign_throughput_matrix(benchmark, scheme):
    benchmark.group = "fi-campaign-throughput"
    matrix = _matrix()
    benchmark.pedantic(
        run_matrix_campaign,
        args=(matrix, scheme, scheme, Region.VALUES, SingleBitFlip()),
        kwargs={"n_trials": 50},
        iterations=1, rounds=3,
    )


def test_fault_campaign_report(benchmark):
    benchmark.group = "fi-report"
    matrix = _matrix()
    rng = np.random.default_rng(22)
    vector = rng.standard_normal(256)

    def run():
        lines = ["FI: fault-injection campaign summary (200 trials each)"]
        for scheme in SCHEMES:
            res = run_matrix_campaign(
                matrix, scheme, scheme, Region.VALUES, SingleBitFlip(), n_trials=200
            )
            lines.append(res.row())
        for scheme in SCHEMES:
            res = run_matrix_campaign(
                matrix, scheme, scheme, Region.VALUES,
                MultiBitFlip(k=2, spread=0), n_trials=200,
            )
            lines.append(res.row())
        for scheme in SCHEMES:
            res = run_vector_campaign(vector, scheme, SingleBitFlip(), n_trials=200)
            lines.append(res.row())
        return "\n".join(lines)

    text = benchmark.pedantic(run, iterations=1, rounds=1)
    write_report("fault_campaigns", text)
