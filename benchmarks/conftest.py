"""Shared benchmark fixtures.

Grid size defaults keep a full ``pytest benchmarks/ --benchmark-only``
run in the minutes range; set ``REPRO_BENCH_N`` (cells per side) to scale
toward the paper's 2048.  Every module also writes its paper-style table
to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from _common import BENCH_N
from repro.harness.overhead import tealeaf_like_matrix


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ belongs to the `bench` tier.

    The fast CI tier deselects it with ``-m "not bench"`` so tier-1 never
    pays for pytest-benchmark calibration rounds; the benchmark job runs
    it alone with ``-m bench``.  (This hook sees the whole session's
    items, so scope the marker to this directory.)
    """
    bench_root = pathlib.Path(__file__).parent
    for item in items:
        if bench_root in item.path.parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_matrix():
    """One TeaLeaf-shaped operator shared across benchmark modules."""
    return tealeaf_like_matrix(BENCH_N)


@pytest.fixture(scope="session")
def bench_x(bench_matrix):
    return np.random.default_rng(11).standard_normal(bench_matrix.n_cols)
