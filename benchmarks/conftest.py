"""Shared benchmark fixtures.

Grid size defaults keep a full ``pytest benchmarks/ --benchmark-only``
run in the minutes range; set ``REPRO_BENCH_N`` (cells per side) to scale
toward the paper's 2048.  Every module also writes its paper-style table
to ``benchmarks/results/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import BENCH_N
from repro.harness.overhead import tealeaf_like_matrix


@pytest.fixture(scope="session")
def bench_matrix():
    """One TeaLeaf-shaped operator shared across benchmark modules."""
    return tealeaf_like_matrix(BENCH_N)


@pytest.fixture(scope="session")
def bench_x(bench_matrix):
    return np.random.default_rng(11).standard_normal(bench_matrix.n_cols)
