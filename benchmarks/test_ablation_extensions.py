"""Ablations over the extension surface: formats, index widths, CRC modes.

* CSR vs COO vs 64-bit-index CSR protection cost for the same operator
  (the storage-format dimension of prior work + the §V.B extension);
* CRC operating points 5ED / 1EC4ED / 2EC3ED: identical check cost on
  clean data (the paper's point that correction capability is free until
  an error actually occurs), diverging only in the repair path.
"""

import numpy as np
import pytest

from repro.bits.float_bits import f64_to_u64
from repro.csr.coo import COOMatrix
from repro.protect import (
    ProtectedCOOMatrix,
    ProtectedCSRElements64,
    ProtectedCSRMatrix,
)
from repro.protect.csr_elements import ProtectedCSRElements


@pytest.fixture(scope="module")
def coo_matrix(bench_matrix):
    return COOMatrix.from_csr(bench_matrix)


def test_check_csr_secded(benchmark, bench_matrix):
    benchmark.group = "ablation-format-check"
    pmat = ProtectedCSRMatrix(bench_matrix, "secded64", "secded64")
    benchmark(pmat.check_all, False)


def test_check_coo_secded128(benchmark, coo_matrix):
    benchmark.group = "ablation-format-check"
    pmat = ProtectedCOOMatrix(coo_matrix, "secded128")
    benchmark(pmat.check_all, False)


def test_check_csr64_secded(benchmark, bench_matrix):
    benchmark.group = "ablation-format-check"
    prot = ProtectedCSRElements64(
        bench_matrix.values.copy(),
        bench_matrix.colidx.astype(np.uint64),
        bench_matrix.rowptr.astype(np.uint64),
        bench_matrix.n_cols,
        "secded",
    )
    benchmark(prot.check, False)


@pytest.mark.parametrize("mode", ["5ED", "1EC4ED", "2EC3ED"])
def test_crc_mode_clean_check(benchmark, bench_matrix, mode):
    """On clean data every mode costs the same - correction is off-path."""
    benchmark.group = "ablation-crc-mode-clean"
    prot = ProtectedCSRElements(
        bench_matrix.values.copy(), bench_matrix.colidx.copy(),
        bench_matrix.rowptr, bench_matrix.n_cols, "crc32c", crc_mode=mode,
    )
    benchmark(prot.check, True)


@pytest.mark.parametrize("mode", ["1EC4ED", "2EC3ED"])
def test_crc_mode_repair_path(benchmark, bench_matrix, mode):
    """With one corrupted row, locating costs O(1) vs O(bits) per mode."""
    benchmark.group = "ablation-crc-mode-repair"
    prot = ProtectedCSRElements(
        bench_matrix.values.copy(), bench_matrix.colidx.copy(),
        bench_matrix.rowptr, bench_matrix.n_cols, "crc32c", crc_mode=mode,
    )

    def corrupt_and_check():
        f64_to_u64(prot.values)[10] ^= np.uint64(1) << np.uint64(17)
        return prot.check(True)

    report = benchmark(corrupt_and_check)
    assert report.ok
