"""Fig. 8 — whole-matrix CRC32C overhead vs check interval.

Paper platform: NVIDIA GTX 1080 Ti (consumer, no hardware ECC), where
deferred checking takes CRC32C from 88 % down to 1 % — the paper's
headline for protecting consumer GPUs.
"""

import pytest

from _common import BENCH_N, write_report
from repro.harness.experiments import run_experiment
from repro.harness.report import format_interval_series
from repro.protect.kernels import protected_spmv
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy

INTERVALS = [1, 2, 4, 8, 16, 32, 64, 128]


@pytest.fixture(scope="module")
def protected(bench_matrix):
    return ProtectedCSRMatrix(bench_matrix, "crc32c", "crc32c")


@pytest.mark.parametrize("interval", INTERVALS)
def test_crc_whole_matrix_interval(benchmark, protected, bench_x, interval):
    benchmark.group = "fig8-crc-interval"
    policy = CheckPolicy(interval=interval, correct=False)

    def run():
        for _ in range(16):
            protected_spmv(protected, bench_x, policy)

    benchmark(run)


def test_fig8_report(benchmark):
    benchmark.group = "fig8-report"
    rows = benchmark.pedantic(
        run_experiment, args=("fig8",), kwargs={"n": BENCH_N, "repeats": 3},
        iterations=1, rounds=1,
    )
    write_report(
        "fig8",
        format_interval_series(
            rows, "Fig. 8: whole-matrix CRC32C overhead vs check interval (GTX 1080 Ti)"
        ),
    )
