"""Shared constants/helpers importable from benchmark modules."""

from __future__ import annotations

import os
import pathlib

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "192"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> None:
    """Persist a paper-style table next to the benchmark outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
