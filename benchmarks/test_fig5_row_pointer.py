"""Fig. 5 — execution-time overheads of row-pointer protection."""

import pytest

from _common import BENCH_N, write_report
from repro.harness.experiments import run_experiment
from repro.harness.report import format_table
from repro.protect.kernels import protected_spmv
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


def test_spmv_baseline(benchmark, bench_matrix, bench_x):
    benchmark.group = "fig5-rowptr-protection"
    benchmark(bench_matrix.matvec, bench_x)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_spmv_protected_rowptr(benchmark, bench_matrix, bench_x, scheme):
    benchmark.group = "fig5-rowptr-protection"
    pmat = ProtectedCSRMatrix(bench_matrix, None, scheme)

    def run():
        protected_spmv(pmat, bench_x, CheckPolicy(interval=1, correct=False))

    benchmark(run)


def test_fig5_report(benchmark):
    benchmark.group = "fig5-report"
    rows = benchmark.pedantic(
        run_experiment, args=("fig5",), kwargs={"n": BENCH_N, "repeats": 3},
        iterations=1, rounds=1,
    )
    write_report(
        "fig5",
        format_table(rows, "Fig. 5: row-pointer protection overhead (per scheme)"),
    )
