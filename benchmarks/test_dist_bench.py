"""Distributed-solve throughput: full sharded CG solves per second.

One benchmark round is one *complete* ``repro.dist`` solve — spawn the
shard workers, partition and re-encode per shard, run the lockstep CG
to convergence, merge — because that is the unit the serving layer's
``--dist-shards`` routing pays for.  Process spawn dominates at this
grid size, so the ``t1-dist`` group is gated by
``benchmarks/compare.py`` against ``benchmarks/BENCH_dist.json`` at the
serving tier's forgiving 50 % threshold rather than the 20 % kernel
bar.

The single-shard row measures the pure protocol overhead (one worker,
no halo traffic); the two-shard row adds halo exchange and a second
protection domain.  The ``t1-dist-kill`` group times the same solve
with a shard killed mid-solve under each recovery strategy — rollback
pays its checkpoint replay, erasure pays one reconstruction round —
gated at the same 50 % threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import write_report
from repro.csr import five_point_operator
from repro.dist import distributed_solve
from repro.protect.config import ProtectionConfig
from repro.recover.policy import RecoveryPolicy

GRID = 16  # 256-row five-point operator, the serving benchmark's size

#: Kill shard 1 at iteration 6 — off the rollback checkpoint cadence,
#: so the rollback row includes the replayed window it pays in practice.
KILL_PLAN = [(6, 1)]

_results: dict[int, dict] = {}
_kill_results: dict[str, dict] = {}


def _system(seed=0):
    rng = np.random.default_rng(seed)
    shape = (GRID, GRID)
    matrix = five_point_operator(
        GRID, GRID, rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape), 0.3
    )
    return matrix, rng.standard_normal(matrix.n_rows)


@pytest.mark.parametrize("n_shards", [1, 2])
def test_dist_solve(benchmark, n_shards):
    """End-to-end sharded protected CG, spawn-to-solution."""
    benchmark.group = "t1-dist"
    matrix, b = _system()
    config = ProtectionConfig.resilient()
    outcome = {}

    def one_solve():
        outcome["result"] = distributed_solve(
            matrix, b, n_shards=n_shards, protection=config, eps=1e-18
        )

    benchmark.pedantic(one_solve, iterations=1, rounds=3, warmup_rounds=1)
    result = outcome["result"]
    assert result.converged
    mean = benchmark.stats["mean"]
    benchmark.extra_info.update({
        "n_shards": n_shards,
        "n_rows": matrix.n_rows,
        "iterations": int(result.iterations),
        "solves_per_sec": 1.0 / mean,
    })
    _results[n_shards] = {"mean": mean, "iterations": int(result.iterations)}
    if set(_results) == {1, 2}:
        lines = ["distributed CG, spawn-to-solution "
                 f"(grid {GRID}, {matrix.n_rows} rows, resilient protection)",
                 "shards  mean/solve  solves/sec  iters"]
        for shards in sorted(_results):
            row = _results[shards]
            lines.append(
                f"{shards:6d}  {row['mean'] * 1e3:8.1f} ms  "
                f"{1.0 / row['mean']:10.2f}  {row['iterations']:5d}"
            )
        write_report("dist", "\n".join(lines))


def _kill_protection(strategy):
    if strategy == "erasure":
        recovery = RecoveryPolicy(strategy="erasure", max_retries=3,
                                  erasure_shards=1)
    else:
        recovery = RecoveryPolicy(strategy=strategy, max_retries=3,
                                  checkpoint_interval=4)
    return ProtectionConfig(correct=False, recovery=recovery)


@pytest.mark.parametrize("strategy", ["rollback", "erasure"])
def test_dist_killed_shard_solve(benchmark, strategy):
    """Time-to-solution with a mid-solve shard kill, per recovery mode."""
    benchmark.group = "t1-dist-kill"
    matrix, b = _system()
    config = _kill_protection(strategy)
    outcome = {}

    def one_solve():
        outcome["result"] = distributed_solve(
            matrix, b, n_shards=2, protection=config, eps=1e-18,
            kill_plan=list(KILL_PLAN),
        )

    benchmark.pedantic(one_solve, iterations=1, rounds=3, warmup_rounds=1)
    result = outcome["result"]
    stats = result.info["distributed"]
    assert result.converged
    assert stats["deaths"] == 1
    if strategy == "erasure":
        assert stats["checkpoints"] == 0
    mean = benchmark.stats["mean"]
    benchmark.extra_info.update({
        "strategy": strategy,
        "n_rows": matrix.n_rows,
        "iterations": int(result.iterations),
        "iters_executed": int(stats["iters_executed"]),
        "checkpoints": int(stats["checkpoints"]),
        "solves_per_sec": 1.0 / mean,
    })
    _kill_results[strategy] = {
        "mean": mean,
        "iterations": int(result.iterations),
        "iters_executed": int(stats["iters_executed"]),
        "checkpoints": int(stats["checkpoints"]),
    }
    if set(_kill_results) == {"rollback", "erasure"}:
        lines = ["distributed CG with shard 1 killed at iteration "
                 f"{KILL_PLAN[0][0]} (grid {GRID}, {matrix.n_rows} rows, "
                 "2 shards)",
                 "strategy  mean/solve  iters  iters_exec  checkpoints"]
        for name in ("rollback", "erasure"):
            row = _kill_results[name]
            lines.append(
                f"{name:8s}  {row['mean'] * 1e3:8.1f} ms  {row['iterations']:5d}"
                f"  {row['iters_executed']:10d}  {row['checkpoints']:11d}"
            )
        write_report("dist-kill", "\n".join(lines))
