"""Benchmark regression gate for the protected-CG suite.

Diffs a fresh ``pytest --benchmark-json`` output against the committed
baseline (``benchmarks/BENCH_t1.json``) and exits non-zero when any
gated benchmark's mean time regressed by more than the threshold
(default 20 %).  Only groups matching ``--groups`` are gated — by
default the ``t1-full-protection*`` groups (the headline
deferred-verification numbers this repo exists to keep fast) plus the
``t1-check-throughput*`` verification-pipeline microbenchmarks.

Usage (exactly what CI runs)::

    python benchmarks/compare.py bench.json
    python benchmarks/compare.py bench.json --baseline benchmarks/BENCH_t1.json \
        --threshold 0.20 --groups "t1-full-protection*"
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "BENCH_t1.json"
#: Gated by default: the headline deferred-verification solves AND the
#: verification-pipeline microbenchmarks (codewords/sec of a SECDED
#: check), so kernel regressions are caught independently of solver noise.
DEFAULT_GROUPS = ("t1-full-protection*", "t1-check-throughput*")


def load_means(path: pathlib.Path, groups: tuple[str, ...]) -> dict[str, float]:
    """Map benchmark name -> mean seconds for the gated groups."""
    data = json.loads(path.read_text())
    means = {}
    for bench in data.get("benchmarks", []):
        group = bench.get("group") or ""
        if any(fnmatch.fnmatch(group, pattern) for pattern in groups):
            means[bench["name"]] = float(bench["stats"]["mean"])
    return means


def compare(
    new: dict[str, float], old: dict[str, float], threshold: float
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines)."""
    lines, failures = [], []
    for name in sorted(old):
        if name not in new:
            lines.append(f"  MISSING  {name}: in baseline but not in this run")
            failures.append(name)
            continue
        ratio = new[name] / old[name] if old[name] else float("inf")
        verdict = "OK"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSED"
            failures.append(name)
        lines.append(
            f"  {verdict:10s}{name}: {old[name] * 1e3:9.2f} ms -> "
            f"{new[name] * 1e3:9.2f} ms  ({ratio - 1.0:+.1%} vs baseline)"
        )
    for name in sorted(set(new) - set(old)):
        lines.append(f"  NEW      {name}: {new[name] * 1e3:9.2f} ms (no baseline)")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new_json", type=pathlib.Path,
                        help="benchmark JSON produced by this run")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional mean-time regression (default 0.20)")
    parser.add_argument("--groups", nargs="*", default=list(DEFAULT_GROUPS),
                        help="benchmark group glob(s) to gate")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"compare: baseline {args.baseline} missing — nothing to gate")
        return 0
    groups = tuple(args.groups)
    old = load_means(args.baseline, groups)
    new = load_means(args.new_json, groups)
    if not old:
        print(f"compare: baseline has no benchmarks in groups {groups}")
        return 0

    print(f"Benchmark regression gate (threshold {args.threshold:.0%}, groups {groups}):")
    lines, failures = compare(new, old, args.threshold)
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed past the threshold")
        return 1
    print("\nPASS: no protected-CG benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
