"""Benchmark regression gate for the protected-CG and serving suites.

Diffs a fresh ``pytest --benchmark-json`` output against the committed
baselines and exits non-zero when any gated benchmark's mean time
regressed by more than the threshold.  With no flags, two gates run:

* ``benchmarks/BENCH_t1.json`` gates the ``t1-full-protection*``
  deferred-verification solves, the ``t1-check-throughput*``
  verification-pipeline microbenchmarks, the ``t1-fused-verify*``
  verify-in-SpMV kernels and the ``t1-block`` blocked multi-RHS solves
  at 20 %;
* ``benchmarks/BENCH_serve.json`` gates the ``t1-serve*`` serving-layer
  benchmarks at 50 % — client-observed latency includes batch windows
  and thread scheduling, so it is inherently noisier than kernel time;
* ``benchmarks/BENCH_dist.json`` gates the ``t1-dist*`` distributed
  spawn-to-solution solves, also at 50 % — process spawn and pipe
  round-trips dominate there.

Passing ``--baseline``/``--groups``/``--threshold`` collapses that to a
single explicit gate (the pre-serve behaviour).

Usage (exactly what CI runs)::

    python benchmarks/compare.py bench.json
    python benchmarks/compare.py bench.json --baseline benchmarks/BENCH_t1.json \
        --threshold 0.20 --groups "t1-full-protection*"
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "BENCH_t1.json"
SERVE_BASELINE = pathlib.Path(__file__).parent / "BENCH_serve.json"
DIST_BASELINE = pathlib.Path(__file__).parent / "BENCH_dist.json"
#: Gated by default: the headline deferred-verification solves AND the
#: verification-pipeline microbenchmarks (codewords/sec of a SECDED
#: check), so kernel regressions are caught independently of solver noise.
DEFAULT_GROUPS = ("t1-full-protection*", "t1-check-throughput*",
                  "t1-fused-verify*", "t1-block")
#: (baseline, group globs, threshold) triples run when no flags are given.
DEFAULT_GATES = (
    (DEFAULT_BASELINE, DEFAULT_GROUPS, 0.20),
    (SERVE_BASELINE, ("t1-serve*",), 0.50),
    (DIST_BASELINE, ("t1-dist*",), 0.50),
)


def load_means(path: pathlib.Path, groups: tuple[str, ...]) -> dict[str, float]:
    """Map benchmark name -> mean seconds for the gated groups."""
    data = json.loads(path.read_text())
    means = {}
    for bench in data.get("benchmarks", []):
        group = bench.get("group") or ""
        if any(fnmatch.fnmatch(group, pattern) for pattern in groups):
            means[bench["name"]] = float(bench["stats"]["mean"])
    return means


def compare(
    new: dict[str, float], old: dict[str, float], threshold: float
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines)."""
    lines, failures = [], []
    for name in sorted(old):
        if name not in new:
            lines.append(f"  MISSING  {name}: in baseline but not in this run")
            failures.append(name)
            continue
        ratio = new[name] / old[name] if old[name] else float("inf")
        verdict = "OK"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSED"
            failures.append(name)
        lines.append(
            f"  {verdict:10s}{name}: {old[name] * 1e3:9.2f} ms -> "
            f"{new[name] * 1e3:9.2f} ms  ({ratio - 1.0:+.1%} vs baseline)"
        )
    for name in sorted(set(new) - set(old)):
        lines.append(f"  NEW      {name}: {new[name] * 1e3:9.2f} ms (no baseline)")
    return lines, failures


def run_gate(new_json: pathlib.Path, baseline: pathlib.Path,
             groups: tuple[str, ...], threshold: float) -> int:
    """Run one baseline-vs-run gate; returns the number of failures."""
    if not baseline.exists():
        print(f"compare: baseline {baseline} missing — nothing to gate")
        return 0
    old = load_means(baseline, groups)
    new = load_means(new_json, groups)
    if not old:
        print(f"compare: baseline has no benchmarks in groups {groups}")
        return 0
    print(f"Benchmark regression gate (threshold {threshold:.0%}, "
          f"groups {groups}, baseline {baseline.name}):")
    lines, failures = compare(new, old, threshold)
    print("\n".join(lines))
    return len(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new_json", type=pathlib.Path,
                        help="benchmark JSON produced by this run")
    parser.add_argument("--baseline", type=pathlib.Path, default=None)
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed fractional mean-time regression (default 0.20)")
    parser.add_argument("--groups", nargs="*", default=None,
                        help="benchmark group glob(s) to gate")
    args = parser.parse_args(argv)

    if args.baseline is None and args.groups is None and args.threshold is None:
        gates = DEFAULT_GATES
    else:
        gates = ((args.baseline or DEFAULT_BASELINE,
                  tuple(args.groups) if args.groups else DEFAULT_GROUPS,
                  args.threshold if args.threshold is not None else 0.20),)

    failures = 0
    for baseline, groups, threshold in gates:
        failures += run_gate(args.new_json, baseline, groups, threshold)
        print()
    if failures:
        print(f"FAIL: {failures} benchmark(s) regressed past the threshold")
        return 1
    print("PASS: no gated benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
