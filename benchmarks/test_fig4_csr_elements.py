"""Fig. 4 — execution-time overheads of CSR *element* protection.

The paper plots, per platform, the TeaLeaf runtime overhead of the four
element schemes.  Here each scheme's protected SpMV (check on every
access, as Fig. 4 measures) is a pytest-benchmark case against the
unprotected baseline; the paper-vs-model-vs-host table is written to
``benchmarks/results/fig4.txt``.
"""

import pytest

from _common import BENCH_N, write_report
from repro.harness.experiments import run_experiment
from repro.harness.report import format_table
from repro.protect.kernels import protected_spmv
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


def test_spmv_baseline(benchmark, bench_matrix, bench_x):
    benchmark.group = "fig4-element-protection"
    benchmark(bench_matrix.matvec, bench_x)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_spmv_protected_elements(benchmark, bench_matrix, bench_x, scheme):
    benchmark.group = "fig4-element-protection"
    pmat = ProtectedCSRMatrix(bench_matrix, scheme, None)

    def run():
        protected_spmv(pmat, bench_x, CheckPolicy(interval=1, correct=False))

    benchmark(run)


def test_fig4_report(benchmark):
    """Regenerates the Fig. 4 table (model for the 5 platforms + host)."""
    benchmark.group = "fig4-report"
    rows = benchmark.pedantic(
        run_experiment, args=("fig4",), kwargs={"n": BENCH_N, "repeats": 3},
        iterations=1, rounds=1,
    )
    write_report(
        "fig4",
        format_table(rows, "Fig. 4: CSR element protection overhead (per scheme)"),
    )
