"""Render README's serving table from the committed BENCH_serve.json.

The README's "Serving" section quotes solves/sec and p50/p99 latency;
this script is the single source of those numbers, so they can always be
regenerated from the committed baseline instead of hand-edited::

    python benchmarks/render_serve.py            # markdown to stdout
    python benchmarks/render_serve.py path.json  # render another run
"""

from __future__ import annotations

import json
import pathlib
import sys

DEFAULT = pathlib.Path(__file__).parent / "BENCH_serve.json"


def render(path: pathlib.Path = DEFAULT) -> str:
    """The markdown table for the given benchmark JSON."""
    data = json.loads(path.read_text())
    rows = []
    for bench in data.get("benchmarks", []):
        if not (bench.get("group") or "").startswith("t1-serve"):
            continue
        extra = bench.get("extra_info", {})
        load = (f"{extra['clients']} concurrent clients"
                if "clients" in extra else "1 client, sequential")
        p50 = f"{extra['p50_ms']:.0f} ms" if "p50_ms" in extra else "—"
        p99 = f"{extra['p99_ms']:.0f} ms" if "p99_ms" in extra else "—"
        rows.append((load, f"{extra['solves_per_sec']:.0f}", p50, p99))
    lines = ["| load | solves/sec | p50 | p99 |", "| --- | --- | --- | --- |"]
    lines += [f"| {load} | {sps} | {p50} | {p99} |"
              for load, sps, p50, p99 in rows]
    return "\n".join(lines)


if __name__ == "__main__":
    path = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT
    print(render(path))
