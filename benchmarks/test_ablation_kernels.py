"""Ablations of the design choices DESIGN.md calls out.

* batched row-parallel CRC32C vs the scalar Slicing-by-16 loop (the
  NumPy stand-in for the paper's SIMD/hardware acceleration argument);
* fixed-width SpMV vs the general reduceat path (the 5-entry-per-row
  storage decision);
* encode vs check cost per scheme (write-buffering rationale: encodes
  happen once per write, checks once per read).
"""

import numpy as np
import pytest

from repro.ecc.crc32c import crc32c_batch, crc32c_slicing16
from repro.csr.spmv import spmv, spmv_fixed_width
from repro.protect.vector import ProtectedVector

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


@pytest.fixture(scope="module")
def row_bytes():
    rng = np.random.default_rng(31)
    return rng.integers(0, 256, (4096, 60)).astype(np.uint8)


def test_crc_batched(benchmark, row_bytes):
    benchmark.group = "ablation-crc-batching"
    benchmark(crc32c_batch, row_bytes)


def test_crc_scalar_loop(benchmark, row_bytes):
    benchmark.group = "ablation-crc-batching"
    rows = [row_bytes[i].tobytes() for i in range(256)]  # 16x fewer rows

    def run():
        for row in rows:
            crc32c_slicing16(row)

    benchmark(run)


def test_spmv_general_reduceat(benchmark, bench_matrix, bench_x):
    benchmark.group = "ablation-spmv-path"
    benchmark(
        spmv, bench_matrix.values, bench_matrix.colidx, bench_matrix.rowptr,
        bench_x, bench_matrix.n_rows,
    )


def test_spmv_fixed_width(benchmark, bench_matrix, bench_x):
    benchmark.group = "ablation-spmv-path"
    benchmark(
        spmv_fixed_width, bench_matrix.values, bench_matrix.colidx, bench_x, 5
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_vector_encode_cost(benchmark, scheme):
    benchmark.group = "ablation-encode-vs-check"
    rng = np.random.default_rng(32)
    data = rng.standard_normal(65536)
    vec = ProtectedVector(data, scheme)
    benchmark(vec.store, data)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_vector_check_cost(benchmark, scheme):
    benchmark.group = "ablation-encode-vs-check"
    rng = np.random.default_rng(33)
    vec = ProtectedVector(rng.standard_normal(65536), scheme)
    benchmark(vec.check, False)
