"""Fig. 6 — whole-matrix SED overhead vs check interval.

Paper platform: Intel Broadwell.  Checking every other iteration helps;
beyond that the index range checks set a ~4 % floor.
"""

import pytest

from _common import BENCH_N, write_report
from repro.harness.experiments import run_experiment
from repro.harness.report import format_interval_series
from repro.protect.kernels import protected_spmv
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy

INTERVALS = [1, 2, 4, 8, 16, 32, 64, 128]


@pytest.fixture(scope="module")
def protected(bench_matrix):
    return ProtectedCSRMatrix(bench_matrix, "sed", "sed")


@pytest.mark.parametrize("interval", INTERVALS)
def test_sed_whole_matrix_interval(benchmark, protected, bench_x, interval):
    benchmark.group = "fig6-sed-interval"
    policy = CheckPolicy(interval=interval, correct=False)

    def run():
        for _ in range(16):
            protected_spmv(protected, bench_x, policy)

    benchmark(run)


def test_fig6_report(benchmark):
    benchmark.group = "fig6-report"
    rows = benchmark.pedantic(
        run_experiment, args=("fig6",), kwargs={"n": BENCH_N, "repeats": 3},
        iterations=1, rounds=1,
    )
    write_report(
        "fig6",
        format_interval_series(
            rows, "Fig. 6: whole-matrix SED overhead vs check interval (Broadwell)"
        ),
    )
