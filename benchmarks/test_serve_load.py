"""Serving-layer throughput and latency under concurrent client load.

Four clients hammer one live ``repro.serve`` TCP endpoint with
same-matrix RHS solves; the service coalesces them into batches over one
warm :class:`~repro.protect.session.ProtectionSession` and one cached
encoded matrix (encode once, serve thousands).  The ``t1-serve`` group
is gated by ``benchmarks/compare.py`` against the committed
``benchmarks/BENCH_serve.json`` baseline; client-observed solves/sec and
p50/p99 submit-to-result latency land in ``extra_info`` and in
``benchmarks/results/serve.txt``.

Every round carries a fresh ``tag`` nonce — job identity is a content
hash, so without it round two would be served from the result cache and
measure nothing but a dictionary lookup.
"""

from __future__ import annotations

import asyncio
import itertools
import statistics
import threading
import time

from _common import write_report
from repro.serve.client import ServeClient
from repro.serve.server import SolveServer
from repro.serve.service import ServeConfig, SolveService

N_CLIENTS = 4
JOBS_PER_CLIENT = 6
GRID = 16  # 256-row five-point operator: small enough that the serving
           # layer (admission, batching, wire) is what gets measured.

_round = itertools.count()


def _job(tag: str, b_seed: int) -> dict:
    return {
        "matrix": {"kind": "five-point", "grid": GRID, "seed": 3},
        "b": {"seed": b_seed},
        "method": "cg",
        "eps": 1e-10,
        "protection": "deferred",
        "tag": tag,
    }


def _client_load(port: int, tag: str, seed0: int, latencies: list, lock):
    client = ServeClient(port=port)
    submitted = []
    for i in range(JOBS_PER_CLIENT):
        t0 = time.perf_counter()
        response = client.submit(_job(tag, seed0 + i))
        submitted.append((response["job_id"], t0))
    for job_id, t0 in submitted:
        client.result(job_id)
        with lock:
            latencies.append(time.perf_counter() - t0)


def _start_server() -> tuple[SolveServer, int, threading.Thread]:
    holder, ready = {}, threading.Event()

    def runner():
        async def amain():
            server = SolveServer(
                SolveService(ServeConfig(batch_window=0.005, max_batch=32))
            )
            holder["server"] = server
            _, holder["port"] = await server.start()
            ready.set()
            await server.serve_forever()

        asyncio.run(amain())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(15), "serve benchmark server failed to start"
    return holder["server"], holder["port"], thread


def test_serve_concurrent_clients(benchmark):
    """Solves/sec and p50/p99 latency with 4 clients on one endpoint."""
    benchmark.group = "t1-serve"
    _, port, thread = _start_server()
    latencies: list[float] = []
    lock = threading.Lock()

    def round_of_load():
        tag = f"round-{next(_round)}"
        clients = [
            threading.Thread(
                target=_client_load,
                args=(port, tag, 100 * c, latencies, lock),
            )
            for c in range(N_CLIENTS)
        ]
        for c in clients:
            c.start()
        for c in clients:
            c.join()

    try:
        benchmark.pedantic(round_of_load, iterations=1, rounds=5,
                           warmup_rounds=1)
        status = ServeClient(port=port).status()
    finally:
        try:
            ServeClient(port=port).shutdown()
        except OSError:
            pass
        thread.join(10)

    jobs_per_round = N_CLIENTS * JOBS_PER_CLIENT
    solves_per_sec = jobs_per_round / benchmark.stats["mean"]
    p50 = statistics.median(latencies)
    p99 = statistics.quantiles(latencies, n=100)[-1]
    benchmark.extra_info.update({
        "clients": N_CLIENTS,
        "jobs_per_round": jobs_per_round,
        "solves_per_sec": solves_per_sec,
        "p50_ms": p50 * 1e3,
        "p99_ms": p99 * 1e3,
        "encodes": status["cache"]["encodes"],
        "cache_hits": status["cache"]["hits"],
    })
    # Encode-once under load: every round, every client, ONE encode.
    assert status["cache"]["encodes"] == 1, status["cache"]
    write_report(
        "serve",
        "Serving layer under concurrent load "
        f"({N_CLIENTS} clients x {JOBS_PER_CLIENT} jobs/round, "
        f"grid {GRID} five-point, deferred protection)\n"
        f"  solves / second         : {solves_per_sec:.1f}\n"
        f"  p50 submit-to-result    : {p50 * 1e3:.1f} ms\n"
        f"  p99 submit-to-result    : {p99 * 1e3:.1f} ms\n"
        f"  matrix encodes (total)  : {status['cache']['encodes']}\n"
        f"  encoded-cache hits      : {status['cache']['hits']}",
    )


def test_serve_single_stream(benchmark):
    """One client, sequential submit+result pairs: the per-job floor."""
    benchmark.group = "t1-serve-single"
    _, port, thread = _start_server()
    client = ServeClient(port=port)

    def one_job():
        tag = f"single-{next(_round)}"
        response = client.submit(_job(tag, 7))
        client.result(response["job_id"])

    try:
        benchmark.pedantic(one_job, iterations=1, rounds=10, warmup_rounds=2)
    finally:
        try:
            ServeClient(port=port).shutdown()
        except OSError:
            pass
        thread.join(10)
    benchmark.extra_info["solves_per_sec"] = 1.0 / benchmark.stats["mean"]
