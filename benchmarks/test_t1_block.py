"""T1 block — blocked multi-RHS solves vs sequential per-column solves.

ISSUE 10's amortisation claim, measured: a batch of ``k`` compatible
protected solves served as ONE blocked CG (per-iteration verification,
kernel dispatch and engine bookkeeping paid once for the whole block)
against the same batch served as ``k`` sequential single-RHS solves
(``REPRO_BLOCK_SOLVE=0`` — the ablation CI also runs for correctness).

The matrix is deliberately a quarter of the headline ``BENCH_N`` grid:
the blocked path's win is the fixed per-iteration cost, so the
dispatch-bound sizes the serving layer actually batches at (hundreds to
a few thousand rows per solve) are where the contract lives.  At very
large ``n`` the ``k``-fold element work dominates both paths and the
ratio tends to the flops floor; the report prints the per-column
amortisation either way.

The ``t1-block`` group is gated by ``benchmarks/compare.py`` against the
committed ``BENCH_t1.json`` baseline at 20 %.
"""

from __future__ import annotations

import os

import numpy as np

from _common import BENCH_N, write_report
from repro.harness.overhead import tealeaf_like_matrix
from repro.protect.config import ProtectionConfig
from repro.solvers.registry import solve

#: Dispatch-bound grid: a quarter of the headline size (48 -> n = 2304
#: at the default BENCH_N of 192), the regime batched serving lives in.
BLOCK_GRID = max(32, BENCH_N // 4)
MAX_ITERS = 40
_results: dict[str, float] = {}


def _matrix():
    return tealeaf_like_matrix(BLOCK_GRID)


def _rhs(k: int) -> np.ndarray:
    return np.random.default_rng(13).standard_normal((BLOCK_GRID ** 2, k))


def _protection():
    return ProtectionConfig.deferred(window=16)


def _bench(benchmark, run, label: str):
    benchmark.group = "t1-block"
    benchmark.pedantic(run, iterations=1, rounds=5, warmup_rounds=1)
    _results[label] = benchmark.stats["mean"]


def test_block_protected_single(benchmark):
    """The k=1 floor every ratio below is read against."""
    A = _matrix()
    b = _rhs(1)[:, 0]
    _bench(benchmark,
           lambda: solve(A, b, protection=_protection(),
                         eps=1e-12, max_iters=MAX_ITERS),
           "protected-single")


def test_block_protected_k4_blocked(benchmark):
    A = _matrix()
    B = _rhs(4)
    _bench(benchmark,
           lambda: solve(A, B, protection=_protection(),
                         eps=1e-12, max_iters=MAX_ITERS),
           "protected-k4-blocked")


def test_block_protected_k4_sequential(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_BLOCK_SOLVE", "0")
    A = _matrix()
    B = _rhs(4)
    _bench(benchmark,
           lambda: solve(A, B, protection=_protection(),
                         eps=1e-12, max_iters=MAX_ITERS),
           "protected-k4-sequential")


def test_block_protected_k16_blocked(benchmark):
    A = _matrix()
    B = _rhs(16)
    _bench(benchmark,
           lambda: solve(A, B, protection=_protection(),
                         eps=1e-12, max_iters=MAX_ITERS),
           "protected-k16-blocked")


def test_block_protected_k16_sequential(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_BLOCK_SOLVE", "0")
    A = _matrix()
    B = _rhs(16)
    _bench(benchmark,
           lambda: solve(A, B, protection=_protection(),
                         eps=1e-12, max_iters=MAX_ITERS),
           "protected-k16-sequential")


def test_block_plain_k16_blocked(benchmark):
    A = _matrix()
    B = _rhs(16)
    _bench(benchmark,
           lambda: solve(A, B, eps=1e-12, max_iters=MAX_ITERS),
           "plain-k16-blocked")


def test_block_plain_k16_sequential(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_BLOCK_SOLVE", "0")
    A = _matrix()
    B = _rhs(16)
    _bench(benchmark,
           lambda: solve(A, B, eps=1e-12, max_iters=MAX_ITERS),
           "plain-k16-sequential")


def test_block_report(benchmark):
    """Assemble the amortisation table from the timings above.

    The hard claim asserted here: serving 16 protected systems as one
    blocked solve beats serving them sequentially.  (The blocked-vs-
    baseline regression gate itself is ``benchmarks/compare.py``.)
    """
    benchmark.group = "t1-block-report"
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    need = {"protected-single", "protected-k16-blocked",
            "protected-k16-sequential"}
    if not need.issubset(_results):  # ran standalone / filtered
        return
    single = _results["protected-single"]
    lines = [
        f"T1 block: blocked multi-RHS amortisation "
        f"(grid {BLOCK_GRID}, n={BLOCK_GRID ** 2}, {MAX_ITERS} CG iters, "
        f"deferred window 16, REPRO_BLOCK_SOLVE ablation for sequential)",
        f"  protected single solve      : {single * 1e3:8.2f} ms",
    ]
    for k in (4, 16):
        blocked = _results.get(f"protected-k{k}-blocked")
        seq = _results.get(f"protected-k{k}-sequential")
        if blocked is None or seq is None:
            continue
        lines.append(
            f"  protected k={k:<2d} blocked      : {blocked * 1e3:8.2f} ms "
            f"({blocked / single:5.2f}x single, {blocked / k / single:5.2f}x "
            f"per column; sequential {seq * 1e3:8.2f} ms -> "
            f"{seq / blocked:4.2f}x speedup)"
        )
    pb = _results.get("plain-k16-blocked")
    ps = _results.get("plain-k16-sequential")
    if pb is not None and ps is not None:
        lines.append(
            f"  unprotected k=16 blocked    : {pb * 1e3:8.2f} ms "
            f"(sequential {ps * 1e3:8.2f} ms -> {ps / pb:4.2f}x)"
        )
    write_report("t1_block", "\n".join(lines))
    assert _results["protected-k16-blocked"] < _results["protected-k16-sequential"], (
        "blocked k=16 protected solve should beat 16 sequential solves"
    )
    assert os.environ.get("REPRO_BLOCK_SOLVE", "1") != "0"
